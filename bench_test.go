package rollingjoin_test

// This file maps every experiment of EXPERIMENTS.md to a testing.B target,
// one benchmark per figure/claim of the paper. The experiments themselves
// live in internal/bench and self-verify against recomputation oracles;
// each benchmark iteration runs one full experiment at quick scale. Run
// cmd/rollbench for the full-scale tables.
//
// This is an external test package (rollingjoin_test): internal/bench
// imports the facade for the MULTIVIEW experiment, so an in-package test
// importing bench would cycle.

import (
	"testing"

	rollingjoin "repro"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/metrics"
	"repro/internal/relalg"
	"repro/internal/tuple"
	"repro/internal/workload"
)

var quick = bench.Scale{Quick: true}

func runExperiment(b *testing.B, fn func() (*metrics.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tbl, err := fn()
		if err != nil {
			b.Fatalf("%v\n%s", err, tbl)
		}
	}
}

// BenchmarkF4ComputeDelta reproduces Figure 4 / Equation 3: the
// asynchronous ComputeDelta query structure for a 2-way join.
func BenchmarkF4ComputeDelta(b *testing.B) {
	runExperiment(b, bench.F4)
}

// BenchmarkF7RegionCoverage reproduces Figure 7: the four query regions
// net to the L-shaped view delta region.
func BenchmarkF7RegionCoverage(b *testing.B) {
	runExperiment(b, bench.F7)
}

// BenchmarkF8Propagate reproduces Figure 8: the Propagate process's
// iteration schedule.
func BenchmarkF8Propagate(b *testing.B) {
	runExperiment(b, bench.F8)
}

// BenchmarkF9Rolling reproduces Figure 9: rolling propagation with
// per-relation intervals.
func BenchmarkF9Rolling(b *testing.B) {
	runExperiment(b, bench.F9)
}

// BenchmarkE1IncrementalVsFull measures incremental refresh against full
// recomputation across delta sizes.
func BenchmarkE1IncrementalVsFull(b *testing.B) {
	runExperiment(b, func() (*metrics.Table, error) { return bench.E1(quick) })
}

// BenchmarkE2IntervalContention measures writer latency while a backlog
// propagates at different interval sizes.
func BenchmarkE2IntervalContention(b *testing.B) {
	runExperiment(b, func() (*metrics.Table, error) { return bench.E2(quick) })
}

// BenchmarkE3AsyncDeferral verifies and times fully deferred propagation.
func BenchmarkE3AsyncDeferral(b *testing.B) {
	runExperiment(b, func() (*metrics.Table, error) { return bench.E3(quick) })
}

// BenchmarkE4PointInTime measures point-in-time refresh cost vs window
// width.
func BenchmarkE4PointInTime(b *testing.B) {
	runExperiment(b, func() (*metrics.Table, error) { return bench.E4(quick) })
}

// BenchmarkE5Eq1VsEq2 compares the query budgets of the synchronous
// baselines and the asynchronous algorithm.
func BenchmarkE5Eq1VsEq2(b *testing.B) {
	runExperiment(b, func() (*metrics.Table, error) { return bench.E5(quick) })
}

// BenchmarkE6StarSchema compares single-interval and per-relation-interval
// propagation on the skewed star-schema workload.
func BenchmarkE6StarSchema(b *testing.B) {
	runExperiment(b, func() (*metrics.Table, error) { return bench.E6(quick) })
}

// BenchmarkE7CaptureModes compares log-based and trigger-based delta
// capture.
func BenchmarkE7CaptureModes(b *testing.B) {
	runExperiment(b, func() (*metrics.Table, error) { return bench.E7(quick) })
}

// BenchmarkA1IndexAblation compares index-nested-loop and full-scan
// propagation queries.
func BenchmarkA1IndexAblation(b *testing.B) {
	runExperiment(b, func() (*metrics.Table, error) { return bench.A1(quick) })
}

// BenchmarkA2AdaptiveIntervals compares fixed and adaptive interval
// policies on the star schema.
func BenchmarkA2AdaptiveIntervals(b *testing.B) {
	runExperiment(b, func() (*metrics.Table, error) { return bench.A2(quick) })
}

// BenchmarkPipelineAB compares the streaming operator pipeline against the
// materializing fallback executor on the star-schema workload.
func BenchmarkPipelineAB(b *testing.B) {
	runExperiment(b, func() (*metrics.Table, error) {
		tbl, _, err := bench.PipelineAB(quick)
		return tbl, err
	})
}

// BenchmarkCacheAB compares cached, indexed, and full-scan rolling
// propagation on the star-schema workload.
func BenchmarkCacheAB(b *testing.B) {
	runExperiment(b, func() (*metrics.Table, error) {
		tbl, _, err := bench.CacheAB(quick)
		return tbl, err
	})
}

// --- micro-benchmarks on the core machinery ---

// BenchmarkPropagationStep measures one rolling forward step (query
// execution, delta append, commit) on a warm 2-way join.
func BenchmarkPropagationStep(b *testing.B) {
	env, err := bench.NewEnv(workload.Chain(2, 1000, 100), 1)
	if err != nil {
		b.Fatal(err)
	}
	defer env.Close()
	d := workload.NewDriver(env.DB, env.W, 2)
	rp := core.NewRollingPropagator(env.Exec, 0, core.FixedInterval(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		last, err := d.Run(4)
		if err != nil {
			b.Fatal(err)
		}
		if err := env.Cap.WaitProgress(last); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := rp.Step(); err != nil && err != core.ErrNoProgress {
			b.Fatal(err)
		}
	}
}

// BenchmarkPropagationStepCached is BenchmarkPropagationStep with the
// join-state cache enabled: forward steps probe resident indexes instead of
// scanning the base tables under locks.
func BenchmarkPropagationStepCached(b *testing.B) {
	env, err := bench.NewEnvBare(workload.Chain(2, 1000, 100), 1)
	if err != nil {
		b.Fatal(err)
	}
	defer env.Close()
	env.DB.SetJoinCache(true)
	d := workload.NewDriver(env.DB, env.W, 2)
	rp := core.NewRollingPropagator(env.Exec, 0, core.FixedInterval(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		last, err := d.Run(4)
		if err != nil {
			b.Fatal(err)
		}
		if err := env.Cap.WaitProgress(last); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := rp.Step(); err != nil && err != core.ErrNoProgress {
			b.Fatal(err)
		}
	}
}

// BenchmarkPropagationAllocs proves the batch and arena reuse drops
// allocations per propagation step: run with -benchmem and compare the
// pooled and unpooled sub-benchmarks' allocs/op on the identical workload.
// The pool=on/off arms time the full engine step (whose transaction and
// WAL machinery allocates by design); the hotpath arm isolates the
// executor pipeline itself — scan, hash join, filter, projection over a
// reused arena — and must report 0 allocs/op in steady state, which CI
// gates on.
func BenchmarkPropagationAllocs(b *testing.B) {
	b.Run("hotpath", func(b *testing.B) {
		base := relalg.NewRelation(nil)
		for i := 0; i < 1000; i++ {
			base.Add(tuple.Tuple{tuple.Int(int64(i % 100)), tuple.Int(int64(i))}, 1, 1)
		}
		delta := relalg.NewRelation(nil)
		for i := 0; i < 100; i++ {
			delta.Add(tuple.Tuple{tuple.Int(int64(i % 100)), tuple.Int(int64(i + 5000))}, 1, 2)
		}
		a := exec.NewArena()
		defer a.Release()
		root := &exec.Project{
			Child: &exec.Filter{
				Child: &exec.HashJoin{
					Left:      exec.NewRelationScan(delta, nil),
					Right:     exec.NewRelationScan(base, nil),
					On:        []relalg.JoinOn{{LeftCol: 0, RightCol: 0}},
					BuildLeft: true,
					A:         a,
				},
				Pred: relalg.ColCol{ColA: 1, Op: relalg.OpNE, ColB: 3},
			},
			Idx: []int{2, 3, 0, 1},
		}
		var rows int64
		sink := func(out *relalg.Batch) error {
			rows += int64(out.Len())
			return nil
		}
		run := func() {
			rows = 0
			if _, _, err := exec.DrainWith(root, a, 0, sink); err != nil {
				b.Fatal(err)
			}
			if rows == 0 {
				b.Fatal("hotpath pipeline produced no rows")
			}
		}
		// One warm-up drain grows the arena's batches, hash table, and
		// column capacities; the timed loop then runs entirely on them.
		run()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			run()
		}
	})
	for _, pooled := range []bool{false, true} {
		name := "pool=off"
		if pooled {
			name = "pool=on"
		}
		b.Run(name, func(b *testing.B) {
			exec.DisableBatchPool = !pooled
			defer func() { exec.DisableBatchPool = false }()
			env, err := bench.NewEnvBare(workload.Chain(2, 1000, 100), 1)
			if err != nil {
				b.Fatal(err)
			}
			defer env.Close()
			d := workload.NewDriver(env.DB, env.W, 2)
			rp := core.NewRollingPropagator(env.Exec, 0, core.FixedInterval(4))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				last, err := d.Run(4)
				if err != nil {
					b.Fatal(err)
				}
				if err := env.Cap.WaitProgress(last); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if err := rp.Step(); err != nil && err != core.ErrNoProgress {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkApplyWindow measures rolling a materialized view forward by one
// commit.
func BenchmarkApplyWindow(b *testing.B) {
	env, err := bench.NewEnv(workload.Chain(2, 500, 50), 3)
	if err != nil {
		b.Fatal(err)
	}
	defer env.Close()
	d := workload.NewDriver(env.DB, env.W, 4)
	last, err := d.Run(b.N + 10)
	if err != nil {
		b.Fatal(err)
	}
	rp := core.NewRollingPropagator(env.Exec, 0, core.FixedInterval(64))
	if err := bench.DrainRolling(rp, last); err != nil {
		b.Fatal(err)
	}
	schema, err := env.W.View.Schema(env.DB)
	if err != nil {
		b.Fatal(err)
	}
	mv := core.NewMaterializedView("bench", schema, 0)
	applier := core.NewApplier(mv, env.Dest, rp.HWM)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := applier.RollTo(rollingjoin.CSN(i + 1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWriterTxn measures a single-row writer transaction with log
// capture active.
func BenchmarkWriterTxn(b *testing.B) {
	env, err := bench.NewEnv(workload.Chain(2, 100, 20), 5)
	if err != nil {
		b.Fatal(err)
	}
	defer env.Close()
	d := workload.NewDriver(env.DB, env.W, 6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAggregateStepAllocs measures the incremental aggregate
// operator's steady-state step: folding one upstream commit's delta rows
// into existing group state (group-level compensation) and emitting the
// group-change pairs. The fold path runs entirely on reused scratch
// (decode sink, key buffers, pooled stages, double-buffered output
// encodings), so what remains is the emission floor — one btree-retained
// buffer per appended group-change row. The CI gate holds allocs/op at
// rowsPerStep, i.e. <= 1 alloc per folded source row.
func BenchmarkAggregateStepAllocs(b *testing.B) {
	eng, err := engine.Open(engine.Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	src := tuple.NewSchema(
		tuple.Column{Name: "g", Kind: tuple.KindInt},
		tuple.Column{Name: "v", Kind: tuple.KindFloat})
	up, err := eng.CreateStandaloneDelta("agg_bench_src", src)
	if err != nil {
		b.Fatal(err)
	}
	def := &core.AggregateDef{
		Name:    "agg_bench",
		Source:  "agg_bench_src",
		GroupBy: []int{0},
		Aggs: []core.AggCol{
			{Func: core.AggCount, Name: "n"},
			{Func: core.AggSum, Col: 1, Name: "total"},
		},
	}
	out, err := def.OutSchema(src)
	if err != nil {
		b.Fatal(err)
	}
	dest, err := eng.CreateStandaloneDelta("agg_bench_dest", out)
	if err != nil {
		b.Fatal(err)
	}
	var hwm relalg.CSN
	av := core.NewAggView(def, src, out, up, func() relalg.CSN { return hwm }, dest)

	const groups = 64
	const rowsPerStep = 256
	// Pre-encode one commit's worth of rows per distinct timestamp so the
	// append side costs nothing inside the timed region.
	encRow := func(g int64, v float64) []byte {
		return tuple.EncodeRow(nil, tuple.Tuple{tuple.Int(g), tuple.Float(v)})
	}
	rows := make([][]byte, rowsPerStep)
	for i := range rows {
		rows[i] = encRow(int64(i%groups), float64(i%97))
	}
	// Seed every group so the timed steps update existing state.
	ts := relalg.CSN(1)
	for _, r := range rows {
		up.AppendEncoded(ts, 1, r, tuple.Null())
	}
	hwm = ts
	if err := av.Step(); err != nil {
		b.Fatal(err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ts++
		for _, r := range rows {
			up.AppendEncoded(ts, 1, r, tuple.Null())
		}
		hwm = ts
		b.StartTimer()
		if err := av.Step(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if av.Groups() != groups {
		b.Fatalf("groups = %d, want %d", av.Groups(), groups)
	}
}
