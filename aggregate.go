package rollingjoin

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/capture"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/relalg"
	"repro/internal/sched"
)

// AggFunc identifies an aggregate function.
type AggFunc = core.AggFunc

// The aggregate functions.
const (
	AggCount = core.AggCount
	AggSum   = core.AggSum
	AggAvg   = core.AggAvg
	AggMin   = core.AggMin
	AggMax   = core.AggMax
)

// Agg requests one aggregate output column.
type Agg struct {
	Func AggFunc
	// Column is the aggregated source column (ignored for AggCount).
	Column string
	// As optionally names the output column; defaults to "count" for
	// COUNT(*) and to e.g. "sum_amt" otherwise.
	As string
}

// AggSpec declares an incremental GROUP BY aggregate over one source
// relation — a base table or another maintained view. Aggregates are
// maintained relations themselves: their group-level delta stream
// registers under their name, so further views and aggregates can be
// defined over them (fact → join view → rollup → top-level rollup).
type AggSpec struct {
	Name    string
	Source  string
	GroupBy []string
	Aggs    []Agg
}

// AggregateView is a maintained incremental aggregate. Like a join view
// it decouples propagation (folding source delta windows into group
// state and minting group-level delta rows) from application (rolling
// the materialized groups forward), supports point-in-time refresh to
// any CSN up to its high-water mark, and registers as a derived relation
// readable by downstream views.
type AggregateView struct {
	maintained

	def     *core.AggregateDef
	source  string
	agg     *core.AggView
	mv      *core.MaterializedView
	dest    *engine.DeltaTable
	derived *engine.Derived
	applier *core.Applier
}

// DefineAggregate materializes the aggregate, wires its propagation and
// delta stream, and (unless Manual) starts maintenance in the
// background. Maintain.Algorithm, Interval, and Intervals are ignored:
// an aggregate's step always folds the source delta up to the source's
// current completeness bound.
func (db *DB) DefineAggregate(spec AggSpec, opt Maintain) (*AggregateView, error) {
	db.ensureCapture()
	if spec.Name == "" {
		return nil, errors.New("rollingjoin: aggregate needs a name")
	}
	if len(spec.GroupBy) == 0 {
		return nil, fmt.Errorf("rollingjoin: aggregate %q needs at least one GROUP BY column", spec.Name)
	}
	if len(spec.Aggs) == 0 {
		return nil, fmt.Errorf("rollingjoin: aggregate %q needs at least one aggregate column", spec.Name)
	}
	srcSchema, err := core.RelationSchema(db.eng, spec.Source)
	if err != nil {
		return nil, fmt.Errorf("rollingjoin: aggregate %q: %w", spec.Name, err)
	}
	if !db.eng.HasDelta(spec.Source) {
		return nil, fmt.Errorf("rollingjoin: aggregate %q: relation %q has no delta table", spec.Name, spec.Source)
	}

	def := &core.AggregateDef{Name: spec.Name, Source: spec.Source}
	for _, n := range spec.GroupBy {
		c := srcSchema.Index(n)
		if c < 0 {
			return nil, fmt.Errorf("rollingjoin: aggregate %q: no column %q in relation %q (have %v)",
				spec.Name, n, spec.Source, srcSchema.Names())
		}
		def.GroupBy = append(def.GroupBy, c)
	}
	seen := make(map[string]bool)
	for _, a := range spec.Aggs {
		col := -1
		if a.Func != AggCount {
			if col = srcSchema.Index(a.Column); col < 0 {
				return nil, fmt.Errorf("rollingjoin: aggregate %q: no column %q in relation %q (have %v)",
					spec.Name, a.Column, spec.Source, srcSchema.Names())
			}
		}
		name := a.As
		if name == "" {
			if a.Func == AggCount {
				name = "count"
			} else {
				name = strings.ToLower(a.Func.String()) + "_" + a.Column
			}
		}
		if seen[name] {
			return nil, fmt.Errorf("rollingjoin: aggregate %q: duplicate output column %q", spec.Name, name)
		}
		seen[name] = true
		def.Aggs = append(def.Aggs, core.AggCol{Func: a.Func, Col: col, Name: name})
	}
	out, err := def.OutSchema(srcSchema)
	if err != nil {
		return nil, err
	}

	ups, upNames := db.upstreamsOf([]string{spec.Source})

	// The cascade contract, same as DefineView: the aggregate's delta
	// stream registers under its own name.
	dest, err := db.eng.CreateStandaloneDelta(spec.Name, out)
	if err != nil {
		return nil, err
	}
	cleanup := func() {
		db.eng.UnregisterDerived(spec.Name)
		db.eng.DropStandaloneDelta(spec.Name)
	}

	src := db.src
	if len(ups) > 0 {
		vs := &capture.ViewSource{Base: db.src}
		for i, u := range ups {
			vs.Ups = append(vs.Ups, capture.Upstream{Name: upNames[i], HWM: u.hwm, CatchUp: u.CatchUpContext})
		}
		src = vs
	}
	// The source's completeness bound: capture progress for a base table,
	// min(capture, upstream HWM) — i.e. the upstream HWM — for a view.
	upHWM := src.Progress

	// Initial state: pick one stable instant, bring the upstream up to
	// it, scan the source there, and seed the group state.
	snap, err := db.eng.OpenSnapshot(relalg.NullTS)
	if err != nil {
		cleanup()
		return nil, err
	}
	asOf := snap.AsOf()
	snap.Close()
	for _, u := range ups {
		if err := u.CatchUp(asOf); err != nil {
			cleanup()
			return nil, err
		}
	}
	srcDef := &core.ViewDef{Name: spec.Name, Relations: []string{spec.Source}}
	q := core.AllBase(srcDef).EngineQuery()
	q.AsOf = asOf
	tx := db.eng.Begin()
	srcRel, err := tx.EvalQuery(q)
	if err != nil {
		tx.Abort()
		cleanup()
		return nil, err
	}
	if _, err := tx.Commit(); err != nil {
		cleanup()
		return nil, err
	}

	upDelta, err := db.eng.Delta(spec.Source)
	if err != nil {
		cleanup()
		return nil, err
	}
	agg := core.NewAggView(def, srcSchema, out, upDelta, upHWM, dest)
	initRel, err := agg.Seed(srcRel, asOf)
	if err != nil {
		cleanup()
		return nil, err
	}
	mv, err := core.MaterializeRelation(spec.Name, out, initRel, asOf)
	if err != nil {
		cleanup()
		return nil, err
	}

	av := &AggregateView{def: def, source: spec.Source, agg: agg, mv: mv, dest: dest}
	av.applier = core.NewApplier(mv, dest, agg.HWM)
	av.maintained = maintained{db: db, hwm: agg.HWM, src: src, ups: ups}

	dv, err := db.eng.RegisterDerived(spec.Name, out, dest, agg.HWM)
	if err != nil {
		cleanup()
		return nil, err
	}
	dv.SetImage(initRel, asOf)
	av.derived = dv

	av.prop = db.sched.Register("prop:"+spec.Name, agg.Step, sched.Options{
		HWM:      agg.HWM,
		Classify: classifyMaintenance,
		Backlog: func(limit int) int {
			return dest.PendingAfter(mv.MatTime(), limit)
		},
		MaxBacklog:   opt.MaxBacklog,
		OnProgress:   av.notifyDeps,
		WakeOnNotify: true,
	})
	if opt.AutoRefresh {
		av.apply = db.sched.Register("apply:"+spec.Name, applyStep(av.applier), sched.Options{
			Classify:   classifyMaintenance,
			OnProgress: av.prop.Kick,
		})
	}

	db.mu.Lock()
	if _, dup := db.aggs[spec.Name]; dup {
		db.mu.Unlock()
		av.unregisterJobs()
		cleanup()
		return nil, fmt.Errorf("rollingjoin: aggregate %q already defined", spec.Name)
	}
	db.aggs[spec.Name] = av
	for _, un := range upNames {
		if db.downs[un] == nil {
			db.downs[un] = make(map[string]bool)
		}
		db.downs[un][spec.Name] = true
	}
	db.mu.Unlock()

	for _, u := range ups {
		u.addDep(av.prop)
	}

	if !opt.Manual {
		av.StartPropagation()
	}
	return av, nil
}

// Aggregate returns a previously defined aggregate view.
func (db *DB) Aggregate(name string) (*AggregateView, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	a, ok := db.aggs[name]
	return a, ok
}

// AggregateNames returns the defined aggregate views, sorted.
func (db *DB) AggregateNames() []string {
	db.mu.Lock()
	defer db.mu.Unlock()
	names := make([]string, 0, len(db.aggs))
	for n := range db.aggs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Name returns the aggregate's name.
func (av *AggregateView) Name() string { return av.def.Name }

// Source returns the relation the aggregate summarizes.
func (av *AggregateView) Source() string { return av.source }

// HWM returns the aggregate delta high-water mark.
func (av *AggregateView) HWM() CSN { return av.hwm() }

// MatTime returns the CSN the materialized groups currently reflect.
func (av *AggregateView) MatTime() CSN { return av.mv.MatTime() }

// Rows returns the materialized group rows sorted by group key.
func (av *AggregateView) Rows() []Tuple {
	rel := av.mv.AsRelation()
	out := make([]Tuple, 0, rel.Len())
	for _, r := range rel.Rows {
		for i := int64(0); i < r.Count; i++ {
			out = append(out, Tuple(r.Tuple))
		}
	}
	return out
}

// Columns returns the output column names.
func (av *AggregateView) Columns() []string { return av.mv.Schema().Names() }

// Groups returns the number of materialized groups.
func (av *AggregateView) Groups() int { return av.mv.DistinctTuples() }

// Relation exposes the materialized groups for experiments.
func (av *AggregateView) Relation() *relalg.Relation { return av.mv.AsRelation() }

// Refresh rolls the materialized groups to the current high-water mark.
func (av *AggregateView) Refresh() (CSN, error) {
	t, err := av.applier.RollToHWM()
	av.prop.Kick()
	return t, err
}

// RefreshTo performs point-in-time refresh to exactly the given CSN.
func (av *AggregateView) RefreshTo(t CSN) error {
	err := av.applier.RollTo(t)
	av.prop.Kick()
	return err
}

// RefreshToTime rolls the aggregate to the last commit at or before the
// given wall-clock instant.
func (av *AggregateView) RefreshToTime(t time.Time) (CSN, error) {
	csn, err := av.db.CSNAt(t)
	if err != nil {
		return 0, err
	}
	if csn < av.MatTime() {
		return 0, core.ErrBackward
	}
	return csn, av.RefreshTo(csn)
}

// StartAutoRefresh starts the scheduled apply job (AutoRefresh
// aggregates only; no-op otherwise). Idempotent.
func (av *AggregateView) StartAutoRefresh() {
	if av.apply != nil {
		av.apply.Start()
	}
}

// StopAutoRefresh suspends the scheduled apply job, draining any
// in-flight roll. Idempotent.
func (av *AggregateView) StopAutoRefresh() error {
	if av.apply != nil {
		return av.apply.Stop()
	}
	return nil
}

// PruneApplied discards aggregate delta rows that can no longer be
// needed, flooring at the smallest downstream high-water mark (see
// View.PruneApplied).
func (av *AggregateView) PruneApplied() int {
	return av.foldTo(maxFoldCSN)
}

// foldTo is PruneApplied with an extra ceiling from the storage horizon
// ledger (see View.foldTo).
func (av *AggregateView) foldTo(limit CSN) int {
	floor := limit
	if t := av.mv.MatTime(); t < floor {
		floor = t
	}
	for _, m := range av.db.downstreamsOf(av.def.Name) {
		if h := m.hwm(); h < floor {
			floor = h
		}
	}
	if av.derived != nil {
		if err := av.derived.CompactThrough(floor); err != nil {
			return 0
		}
	}
	return av.dest.PruneThrough(floor)
}

// AggStats reports maintenance activity for an aggregate view.
type AggStats struct {
	GroupCount        int
	StepsRun          int64
	SourceRowsFolded  int64
	DeltaRowsProduced int64
	DeltaRowsPending  int
	RowsApplied       int64
	Refreshes         int64
	HWM               CSN
	MatTime           CSN
	MaintenanceErr    error
}

// Stats returns a snapshot of the aggregate's maintenance counters.
func (av *AggregateView) Stats() AggStats {
	return AggStats{
		GroupCount:        av.agg.Groups(),
		StepsRun:          av.agg.Steps(),
		SourceRowsFolded:  av.agg.RowsFolded(),
		DeltaRowsProduced: av.agg.RowsEmitted(),
		DeltaRowsPending:  av.dest.Len(),
		RowsApplied:       av.applier.RowsApplied(),
		Refreshes:         av.applier.Refreshes(),
		HWM:               av.hwm(),
		MatTime:           av.mv.MatTime(),
		MaintenanceErr:    av.Err(),
	}
}
