// Command rollsh is an interactive SQL shell over the rollingjoin library:
// create tables and materialized views, stream updates, and watch
// asynchronous incremental maintenance happen.
//
//	$ go run ./cmd/rollsh
//	rollsh> CREATE TABLE orders (id INT, item TEXT);
//	rollsh> CREATE TABLE items (item TEXT, price INT);
//	rollsh> INSERT INTO items VALUES ('ball', 5);
//	rollsh> CREATE MATERIALIZED VIEW op AS
//	          SELECT o.id, i.price FROM orders o JOIN items i ON o.item = i.item
//	          WITH INTERVAL 8;
//	rollsh> INSERT INTO orders VALUES (1, 'ball');
//	rollsh> REFRESH VIEW op;
//	rollsh> SELECT * FROM op;
//
// Statements end with ';'. A script can be piped on stdin or passed with
// -f. Use -wal to persist the write-ahead log to a file.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	rollingjoin "repro"
	"repro/internal/sql"
)

func main() {
	walPath := flag.String("wal", "", "back the write-ahead log with this file")
	file := flag.String("f", "", "execute statements from this file and exit")
	flag.Parse()

	db, err := rollingjoin.Open(rollingjoin.Options{WALPath: *walPath})
	if err != nil {
		fmt.Fprintln(os.Stderr, "rollsh:", err)
		os.Exit(1)
	}
	defer db.Close()
	session := sql.NewSession(db)

	if *file != "" {
		script, err := os.ReadFile(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rollsh:", err)
			os.Exit(1)
		}
		if !runScript(session, string(script)) {
			os.Exit(1)
		}
		return
	}

	interactive := isTerminal()
	if interactive {
		fmt.Println("rollingjoin SQL shell — statements end with ';', ctrl-D to exit")
	}
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() {
		if !interactive {
			return
		}
		if buf.Len() == 0 {
			fmt.Print("rollsh> ")
		} else {
			fmt.Print("   ...> ")
		}
	}
	prompt()
	for scanner.Scan() {
		line := scanner.Text()
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.Contains(line, ";") {
			runScript(session, buf.String())
			buf.Reset()
		}
		prompt()
	}
	if buf.Len() > 0 && strings.TrimSpace(buf.String()) != "" {
		runScript(session, buf.String())
	}
}

// runScript executes a script and prints results; it returns false if any
// statement failed.
func runScript(s *sql.Session, script string) bool {
	if strings.TrimSpace(script) == "" {
		return true
	}
	results, err := s.Exec(script)
	for _, r := range results {
		fmt.Println(r.String())
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		return false
	}
	return true
}

// isTerminal reports whether stdin looks interactive.
func isTerminal() bool {
	st, err := os.Stdin.Stat()
	if err != nil {
		return false
	}
	return st.Mode()&os.ModeCharDevice != 0
}
