package main

import (
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	rollingjoin "repro"
	"repro/internal/relalg"
)

// runSoak is the sustained-ingest endurance mode: it drives a steady
// insert/delete stream with folding, cold spill, and periodic incremental
// checkpoints enabled, samples RSS and total delta-table cardinality, and
// fails if either grows without bound or any view diverges from
// recomputation at the end. A short run doubles as the CI smoke arm:
//
//	rollload -soak 30s -rss-limit 512
func runSoak(dur time.Duration, rssLimitMB int, seed int64, report time.Duration) error {
	spillRoot, err := os.MkdirTemp("", "rollload-spill-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(spillRoot)
	chainDir, err := os.MkdirTemp("", "rollload-chain-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(chainDir)

	db, err := rollingjoin.Open(rollingjoin.Options{
		FoldDeltas: true,
		SpillDir:   spillRoot,
		SpillAfter: 2 * time.Second,
	})
	if err != nil {
		return err
	}
	defer db.Close()

	if err := soakCatalog(db); err != nil {
		return err
	}
	items := []struct {
		name  string
		price int64
	}{{"ball", 5}, {"bat", 20}, {"glove", 12}, {"cap", 7}}
	regions := []string{"east", "west", "north", "south"}
	if _, err := db.Update(func(tx *rollingjoin.Tx) error {
		for _, it := range items {
			if err := tx.Insert("items", rollingjoin.Str(it.name), rollingjoin.Int(it.price)); err != nil {
				return err
			}
		}
		for cust := int64(0); cust < 16; cust++ {
			if err := tx.Insert("regions", rollingjoin.Int(cust), rollingjoin.Str(regions[cust%4])); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}

	pricesSpec := rollingjoin.ViewSpec{
		Name:   "order_prices",
		Tables: []string{"orders", "items"},
		Joins:  []rollingjoin.Join{{LeftTable: "orders", LeftColumn: "item", RightTable: "items", RightColumn: "item"}},
	}
	enrichedSpec := rollingjoin.ViewSpec{
		Name:   "orders_enriched",
		Tables: []string{"orders", "regions"},
		Joins:  []rollingjoin.Join{{LeftTable: "orders", LeftColumn: "cust", RightTable: "regions", RightColumn: "cust"}},
	}
	auto := rollingjoin.Maintain{Interval: 8, AutoRefresh: true}
	prices, err := db.DefineView(pricesSpec, auto)
	if err != nil {
		return err
	}
	enriched, err := db.DefineView(enrichedSpec, auto)
	if err != nil {
		return err
	}
	// Cascade: a maintained aggregate over the enriched view exercises the
	// downstream-HWM leg of the fold horizon.
	rollup, err := db.DefineAggregate(rollingjoin.AggSpec{
		Name:    "region_counts",
		Source:  "orders_enriched",
		GroupBy: []string{"region"},
		Aggs:    []rollingjoin.Agg{{Func: rollingjoin.AggCount}},
	}, auto)
	if err != nil {
		return err
	}
	// An archival copy on a slow manual cadence: between its refreshes the
	// image goes idle, spills cold, and is paged back in by the next fold
	// or refresh — a stale subscriber that still releases the horizon.
	archive, err := db.DefineView(rollingjoin.ViewSpec{
		Name:   "order_prices_archive",
		Tables: pricesSpec.Tables,
		Joins:  pricesSpec.Joins,
	}, rollingjoin.Maintain{Manual: true})
	if err != nil {
		return err
	}

	fmt.Printf("soak duration=%s rss-limit=%dMB fold=on spill=%s checkpoints=%s\n\n",
		dur, rssLimitMB, spillRoot, chainDir)

	const keepLive = 2000 // steady-state live orders
	rng := rand.New(rand.NewSource(seed))
	var (
		nextID                   int64
		commits                  int64
		rssSamples, deltaSamples []float64
		ckptLat                  []time.Duration
		last                     rollingjoin.CSN
		tick                     int
	)
	deadline := time.Now().Add(dur)
	start := time.Now()
	lastReport := start
	for time.Now().Before(deadline) {
		id := nextID
		nextID++
		it := items[rng.Intn(len(items))].name
		cust := rng.Int63n(16)
		csn, err := db.Update(func(tx *rollingjoin.Tx) error {
			if err := tx.Insert("orders", rollingjoin.Int(id), rollingjoin.Str(it), rollingjoin.Int(cust)); err != nil {
				return err
			}
			if id >= keepLive {
				// Slide the live window so base cardinality stays flat.
				if _, err := tx.Delete("orders", "id", rollingjoin.EQ, rollingjoin.Int(id-keepLive), 1); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
		last = csn
		commits++
		if time.Since(lastReport) >= report {
			lastReport = time.Now()
			tick++
			// One incremental checkpoint link per tick: under sustained
			// ingest the latency must track the change window, not the
			// accumulated database.
			st := time.Now()
			if err := db.CheckpointIncremental(chainDir); err != nil {
				return fmt.Errorf("incremental checkpoint at commit %d: %w", commits, err)
			}
			ckptLat = append(ckptLat, time.Since(st))
			// The archive subscriber advances on a slow cadence; its stale
			// horizon pins folding only between these refreshes.
			if tick%3 == 0 {
				if err := archive.CatchUp(last); err != nil {
					return err
				}
				if _, err := archive.Refresh(); err != nil {
					return err
				}
			}
			rss := rssMB()
			deltas := totalDeltaRows(db)
			rssSamples = append(rssSamples, rss)
			deltaSamples = append(deltaSamples, float64(deltas))
			es := db.Engine().Stats()
			fmt.Printf("t=%-6s txns=%-8d rss=%5.0fMB delta-rows=%-8d folded=%-8d compactions=%-5d spilled=%6dKB cold-loads=%-3d ckpts=%d ckpt-p50=%s\n",
				time.Since(start).Round(time.Second), commits, rss, deltas,
				es.FoldedRows, es.Compactions, es.SpilledBytes/1024, es.ColdLoads,
				len(ckptLat), medianDuration(ckptLat).Round(time.Microsecond))
		}
	}
	wall := time.Since(start)

	// Settle: drain the cascade bottom-up to the last commit, then refresh.
	if err := prices.CatchUp(last); err != nil {
		return err
	}
	if err := enriched.CatchUp(last); err != nil {
		return err
	}
	if err := rollup.CatchUp(last); err != nil {
		return err
	}
	if _, err := prices.Refresh(); err != nil {
		return err
	}
	if _, err := enriched.Refresh(); err != nil {
		return err
	}
	if _, err := rollup.Refresh(); err != nil {
		return err
	}
	if err := archive.CatchUp(last); err != nil {
		return err
	}
	if _, err := archive.Refresh(); err != nil {
		return err
	}

	es := db.Engine().Stats()
	fmt.Printf("\n--- soak summary ---\n")
	fmt.Printf("ingest:        %d commits in %s (%.0f/s), %d live orders\n",
		commits, wall.Round(time.Second), float64(commits)/wall.Seconds(), min64(nextID, keepLive))
	fmt.Printf("tiering:       %d compactions folded %d rows, %d KB spilled, %d cold loads\n",
		es.Compactions, es.FoldedRows, es.SpilledBytes/1024, es.ColdLoads)
	fmt.Printf("residency:     image %d KB, cache %d rows / %d KB\n",
		es.ImageResidentBytes/1024, es.CacheResidentRows, es.CacheResidentBytes/1024)
	if len(ckptLat) > 0 {
		var sum, max time.Duration
		for _, d := range ckptLat {
			sum += d
			if d > max {
				max = d
			}
		}
		fmt.Printf("checkpoints:   %d incremental links, mean %s, max %s\n",
			len(ckptLat), (sum / time.Duration(len(ckptLat))).Round(time.Microsecond), max.Round(time.Microsecond))
	}

	// Correctness: every maintained view equals recomputation.
	if err := verifyRows("order_prices", prices.Rows(), db, pricesSpec); err != nil {
		return err
	}
	if err := verifyRows("orders_enriched", enriched.Rows(), db, enrichedSpec); err != nil {
		return err
	}
	if err := verifyRollup(rollup, db, enrichedSpec); err != nil {
		return err
	}
	if err := verifyRows("order_prices_archive", archive.Rows(), db, pricesSpec); err != nil {
		return err
	}
	// A direct derived read pages the archive image back in if the final
	// quiet period spilled it.
	dv, err := db.Engine().Derived("order_prices_archive")
	if err != nil {
		return err
	}
	if _, err := dv.ScanAsOf(relalg.NullTS, nil); err != nil {
		return fmt.Errorf("cold archive read: %w", err)
	}
	after := db.Engine().Stats()
	fmt.Printf("verification:  4 maintained views match recomputation (%d cold loads) ✓\n", after.ColdLoads)

	// Bounded growth: the run fails if RSS or delta cardinality keeps
	// climbing instead of plateauing under fold/spill pressure.
	if err := boundedGrowth("rss", rssSamples, 64); err != nil {
		return err
	}
	if err := boundedGrowth("delta-rows", deltaSamples, float64(keepLive)); err != nil {
		return err
	}
	if rssLimitMB > 0 {
		for _, s := range rssSamples {
			if s > float64(rssLimitMB) {
				return fmt.Errorf("rss %0.fMB exceeded -rss-limit %dMB", s, rssLimitMB)
			}
		}
	}
	fmt.Printf("growth:        rss and delta cardinality bounded over %d samples ✓\n", len(rssSamples))
	return nil
}

func soakCatalog(db *rollingjoin.DB) error {
	if err := db.CreateTable("orders",
		rollingjoin.Col("id", rollingjoin.TypeInt),
		rollingjoin.Col("item", rollingjoin.TypeString),
		rollingjoin.Col("cust", rollingjoin.TypeInt),
	); err != nil {
		return err
	}
	if err := db.CreateTable("items",
		rollingjoin.Col("item", rollingjoin.TypeString),
		rollingjoin.Col("price", rollingjoin.TypeInt),
	); err != nil {
		return err
	}
	return db.CreateTable("regions",
		rollingjoin.Col("cust", rollingjoin.TypeInt),
		rollingjoin.Col("region", rollingjoin.TypeString),
	)
}

// rssMB reads the process resident set from /proc/self/status, falling
// back to the Go heap when unavailable (non-Linux).
func rssMB() float64 {
	if b, err := os.ReadFile("/proc/self/status"); err == nil {
		for _, line := range strings.Split(string(b), "\n") {
			if !strings.HasPrefix(line, "VmRSS:") {
				continue
			}
			fields := strings.Fields(line)
			if len(fields) >= 2 {
				if kb, err := strconv.ParseFloat(fields[1], 64); err == nil {
					return kb / 1024
				}
			}
		}
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return float64(ms.HeapInuse) / (1 << 20)
}

// totalDeltaRows sums resident delta cardinality across every relation,
// base and derived.
func totalDeltaRows(db *rollingjoin.DB) int64 {
	var total int64
	for _, name := range db.Engine().TableNames() {
		if d, err := db.Engine().Delta(name); err == nil {
			total += int64(d.Len())
		}
	}
	return total
}

// boundedGrowth rejects a sample series whose steady-state (final third)
// maximum exceeds twice the warmup (first third) maximum plus a small
// absolute allowance for noise. Short runs with too few samples pass
// trivially — the check needs a warmup and a steady state to compare.
func boundedGrowth(name string, samples []float64, allowance float64) error {
	if len(samples) < 9 {
		return nil
	}
	third := len(samples) / 3
	var firstMax, lastMax float64
	for _, s := range samples[:third] {
		if s > firstMax {
			firstMax = s
		}
	}
	for _, s := range samples[len(samples)-third:] {
		if s > lastMax {
			lastMax = s
		}
	}
	if lastMax > 2*firstMax+allowance {
		return fmt.Errorf("%s grew without bound: warmup max %.0f, steady-state max %.0f", name, firstMax, lastMax)
	}
	return nil
}

// verifyRows compares a maintained view's rows against an ad-hoc
// recomputation of the same spec, as multisets.
func verifyRows(name string, got []rollingjoin.Tuple, db *rollingjoin.DB, spec rollingjoin.ViewSpec) error {
	oracle := spec
	oracle.Name = name + "_oracle"
	full, err := db.Query(oracle)
	if err != nil {
		return err
	}
	g, w := renderRows(got), renderRows(full.Rows)
	if len(g) != len(w) {
		return fmt.Errorf("%s diverged: %d rows vs %d recomputed", name, len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			return fmt.Errorf("%s diverged from recomputation at row %d: %s vs %s", name, i, g[i], w[i])
		}
	}
	return nil
}

// verifyRollup recomputes the per-region count from the enriched join and
// compares it with the maintained aggregate.
func verifyRollup(rollup *rollingjoin.AggregateView, db *rollingjoin.DB, enrichedSpec rollingjoin.ViewSpec) error {
	oracle := enrichedSpec
	oracle.Name = "rollup_oracle"
	full, err := db.Query(oracle)
	if err != nil {
		return err
	}
	want := make(map[string]int64)
	for _, row := range full.Rows {
		// enriched row layout: orders(id,item,cust) ++ regions(cust,region)
		want[row[4].AsString()]++
	}
	got := make(map[string]int64)
	for _, row := range rollup.Rows() {
		got[row[0].AsString()] = row[1].AsInt()
	}
	if len(got) != len(want) {
		return fmt.Errorf("region_counts diverged: %d groups vs %d recomputed", len(got), len(want))
	}
	for region, n := range want {
		if got[region] != n {
			return fmt.Errorf("region_counts[%s] = %d, recomputation says %d", region, got[region], n)
		}
	}
	return nil
}

func renderRows(rows []rollingjoin.Tuple) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = fmt.Sprint(r)
	}
	sort.Strings(out)
	return out
}

func medianDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[len(sorted)/2]
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
