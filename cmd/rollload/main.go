// Command rollload is a load generator for the rolling-join system: it
// drives a configurable workload (chain join or star schema) against a
// maintained view and prints live throughput, maintenance, and contention
// statistics — a small "sysbench" for asynchronous view maintenance.
//
//	rollload -workload star -dims 3 -rows 5000 -updates 20000 \
//	         -interval 16 -report 1s
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	_ "net/http/pprof"
	"os"
	"time"

	"repro/internal/capture"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/relalg"
	"repro/internal/workload"
)

func main() {
	kind := flag.String("workload", "chain", "workload: chain or star")
	n := flag.Int("n", 2, "relations in the chain workload")
	dims := flag.Int("dims", 2, "dimension tables in the star workload")
	rows := flag.Int("rows", 2000, "initial rows per table (fact table for star)")
	updates := flag.Int("updates", 10000, "update transactions to run")
	interval := flag.Int64("interval", 16, "propagation interval (commits)")
	adaptive := flag.Int("adaptive", 0, "adaptive target rows per query (0 = fixed interval)")
	indexed := flag.Bool("index", false, "create hash indexes on the join columns")
	cached := flag.Bool("cache", false, "enable the join-state cache for propagation queries")
	workers := flag.Int("workers", 1, "concurrent propagation queries (worker pool size)")
	report := flag.Duration("report", time.Second, "live report period")
	seed := flag.Int64("seed", 1, "workload random seed")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	flag.Parse()

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "rollload: pprof:", err)
			}
		}()
	}
	if err := run(*kind, *n, *dims, *rows, *updates, *interval, *adaptive, *indexed, *cached, *workers, *report, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "rollload:", err)
		os.Exit(1)
	}
}

func run(kind string, n, dims, rows, updates int, interval int64, adaptive int, indexed, cached bool, workers int, report time.Duration, seed int64) error {
	var w *workload.Workload
	switch kind {
	case "chain":
		w = workload.Chain(n, rows, rows/10+1)
	case "star":
		w = workload.StarSchema(dims, rows, rows/10+1, 20)
	default:
		return fmt.Errorf("unknown workload %q", kind)
	}

	db, err := engine.Open(engine.Config{})
	if err != nil {
		return err
	}
	defer db.Close()
	if err := w.Setup(db, rand.New(rand.NewSource(seed))); err != nil {
		return err
	}
	if indexed {
		for _, spec := range w.Tables {
			if _, err := db.CreateIndex(spec.Name, "k"); err != nil {
				return err
			}
		}
	}
	db.SetJoinCache(cached)
	cap := capture.NewLogCapture(db)
	cap.Start()

	schema, err := w.View.Schema(db)
	if err != nil {
		return err
	}
	dest, err := db.CreateStandaloneDelta("Δ"+w.View.Name, schema)
	if err != nil {
		return err
	}
	exec := core.NewExecutor(db, cap, w.View, dest)
	exec.SetWorkers(workers)
	exec.Metrics = core.NewExecMetrics()
	mv, err := core.Materialize(db, w.View)
	if err != nil {
		return err
	}
	var policy core.IntervalPolicy
	if adaptive > 0 {
		policy = core.AdaptiveInterval(db, w.View, adaptive)
	} else {
		policy = core.FixedInterval(relalg.CSN(interval))
	}
	rp := core.NewRollingPropagator(exec, mv.MatTime(), policy)
	applier := core.NewApplier(mv, dest, rp.HWM)

	stop := make(chan struct{})
	propDone := make(chan error, 1)
	go func() { propDone <- rp.Run(stop) }()

	fmt.Printf("workload=%s view=%s relations=%d initial-rows=%d updates=%d\n\n",
		kind, w.View.Name, w.View.N(), rows, updates)

	driver := workload.NewDriver(db, w, seed+1)
	lat := metrics.NewHistogram()
	allocs := metrics.NewAllocSampler()
	start := time.Now()
	lastReport := start
	var reported, reportedPropRows int64
	var last relalg.CSN
	for i := 0; i < updates; i++ {
		s := time.Now()
		csn, err := driver.Step()
		if err != nil {
			close(stop)
			return err
		}
		lat.Observe(time.Since(s))
		last = csn
		if time.Since(lastReport) >= report {
			es := exec.Stats()
			done := driver.Committed()
			since := time.Since(lastReport).Seconds()
			rate := float64(done-reported) / since
			propRows := exec.Metrics.Rows.Sum()
			propRate := float64(propRows-reportedPropRows) / since
			fmt.Printf("t=%-6s txns=%-7d rate=%7.0f/s  p99=%-9s hwm=%-7d lag=%-6d fwd=%-5d comp=%-5d skipped=%-5d prop=%6.0frows/s q-p99=%s\n",
				time.Since(start).Round(time.Second), done, rate,
				lat.Quantile(0.99).Round(time.Microsecond),
				int64(rp.HWM()), int64(last-rp.HWM()),
				es.ForwardQueries, es.CompensationQueries, es.SkippedEmpty,
				propRate, exec.Metrics.Latency.Quantile(0.99).Round(time.Microsecond))
			lastReport = time.Now()
			reported = done
			reportedPropRows = propRows
		}
	}
	wall := time.Since(start)

	// Drain, refresh, and verify against recomputation.
	for rp.HWM() < last {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	if err := <-propDone; err != nil {
		return err
	}
	if _, err := applier.RollToHWM(); err != nil {
		return err
	}
	full, csn, err := core.FullRefresh(db, w.View)
	if err != nil {
		return err
	}
	for rp.HWM() < csn {
		if err := rp.Step(); err != nil && err != core.ErrNoProgress {
			return err
		}
	}
	if err := applier.RollTo(csn); err != nil {
		return err
	}
	ok := relalg.Equivalent(mv.AsRelation(), full)

	// Reclaim dead row versions now that no snapshot needs them, so the
	// summary shows the retain/collect cycle.
	db.GCVersions()

	es := exec.Stats()
	st := db.Stats()
	fmt.Printf("\n--- summary ---\n")
	fmt.Printf("updates:              %d in %s (%.0f/s)\n", updates, wall.Round(time.Millisecond), float64(updates)/wall.Seconds())
	fmt.Printf("writer latency:       mean %s  p99 %s  max %s\n",
		lat.Mean().Round(time.Microsecond), lat.Quantile(0.99).Round(time.Microsecond), lat.Max().Round(time.Microsecond))
	fmt.Printf("propagation:          %d forward + %d compensation queries, %d skipped empty (%d workers)\n",
		es.ForwardQueries, es.CompensationQueries, es.SkippedEmpty, exec.Workers())
	fmt.Printf("query latency:        mean %s  p99 %s  max %s\n",
		exec.Metrics.Latency.Mean().Round(time.Microsecond),
		exec.Metrics.Latency.Quantile(0.99).Round(time.Microsecond),
		exec.Metrics.Latency.Max().Round(time.Microsecond))
	fmt.Printf("delta rows produced:  %d in %d batches (view now %d tuples)\n",
		es.RowsProduced, es.BatchesProduced, mv.Cardinality())
	fmt.Printf("engine:               %d rows scanned, %d joined, %d index probes\n",
		st.RowsScanned, st.RowsJoined, st.IndexProbes)
	if cached {
		fmt.Printf("join cache:           %d hits, %d misses, %d maint rows, %d builds, %d rows resident (~%d KiB)\n",
			st.CacheHits, st.CacheMisses, st.CacheMaintRows, st.CacheBuilds,
			st.CacheResidentRows, st.CacheResidentBytes/1024)
	}
	a := allocs.Sample()
	fmt.Printf("allocations:          %d objects, %d MiB since driver start\n",
		a.Mallocs, a.Bytes/(1<<20))
	fmt.Printf("locks:                %d waits, %s total wait, %d deadlocks\n",
		st.Txn.LockWaits, st.Txn.LockWaitTime.Round(time.Microsecond), st.Txn.Deadlocks)
	fmt.Printf("snapshots:            %d opened, %d publish-barrier stalls, %d dead versions retained, %d collected\n",
		st.SnapshotsOpened, st.PublishStalls, st.VersionsRetained, st.VersionsCollected)
	if ok {
		fmt.Println("verification:         rolled view matches full recomputation ✓")
		return nil
	}
	return fmt.Errorf("verification FAILED: rolled view diverged from recomputation")
}
