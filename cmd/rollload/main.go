// Command rollload is a load generator for the rolling-join system: it
// drives a configurable workload (chain join or star schema) against one or
// more maintained views and prints live throughput, maintenance, and
// contention statistics — a small "sysbench" for asynchronous view
// maintenance. Propagation runs on the event-driven maintenance scheduler
// by default; -mode poll keeps the legacy per-view polling loops for
// comparison.
//
//	rollload -workload star -dims 3 -rows 5000 -updates 20000 \
//	         -views 4 -interval 16 -report 1s
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	_ "net/http/pprof"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/capture"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/relalg"
	"repro/internal/sched"
	"repro/internal/workload"
)

func main() {
	kind := flag.String("workload", "chain", "workload: chain or star")
	n := flag.Int("n", 2, "relations in the chain workload")
	dims := flag.Int("dims", 2, "dimension tables in the star workload")
	rows := flag.Int("rows", 2000, "initial rows per table (fact table for star)")
	updates := flag.Int("updates", 10000, "update transactions to run")
	views := flag.Int("views", 1, "number of identically defined maintained views")
	mode := flag.String("mode", "sched", "maintenance driver: sched (event-driven scheduler) or poll (per-view 1ms polling loops)")
	maint := flag.Int("maint", 4, "scheduler worker-pool size (sched mode)")
	interval := flag.Int64("interval", 16, "propagation interval (commits)")
	adaptive := flag.Int("adaptive", 0, "adaptive target rows per query (0 = fixed interval)")
	indexed := flag.Bool("index", false, "create hash indexes on the join columns")
	cached := flag.Bool("cache", false, "enable the join-state cache for propagation queries")
	workers := flag.Int("workers", 1, "concurrent propagation queries per view (worker pool size)")
	partitions := flag.Int("partitions", 0, "hash partitions per base table (0 = ROLLINGJOIN_PARTITIONS env, then 1)")
	batch := flag.Int("batch", 0, "executor batch size in rows (0 = ROLLINGJOIN_BATCH env, then 256)")
	skew := flag.Float64("skew", 0, "zipf exponent for fact-table keys in the star workload (0 = uniform)")
	report := flag.Duration("report", time.Second, "live report period")
	seed := flag.Int64("seed", 1, "workload random seed")
	faults := flag.Int64("faults", 0, "chaos smoke: inject a transient I/O error every Nth view apply (sched mode only)")
	soak := flag.Duration("soak", 0, "sustained-ingest endurance mode: run for this duration with folding, spill, and incremental checkpoints, sampling RSS and delta cardinality")
	rssLimit := flag.Int("rss-limit", 0, "soak mode: fail if sampled RSS ever exceeds this many MB (0 = relative growth check only)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	flag.Parse()

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "rollload: pprof:", err)
			}
		}()
	}
	if *soak > 0 {
		if err := runSoak(*soak, *rssLimit, *seed, *report); err != nil {
			fmt.Fprintln(os.Stderr, "rollload:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*kind, *mode, *n, *dims, *rows, *updates, *views, *maint, *interval, *adaptive, *indexed, *cached, *workers, *partitions, *batch, *skew, *report, *seed, *faults); err != nil {
		fmt.Fprintln(os.Stderr, "rollload:", err)
		os.Exit(1)
	}
}

// viewInst is one maintained view instance: its own view delta, executor,
// rolling propagator, and applier over the shared workload definition.
type viewInst struct {
	exec     *core.Executor
	mv       *core.MaterializedView
	dest     *engine.DeltaTable
	rp       *core.RollingPropagator
	applier  *core.Applier
	job      *sched.Job // sched mode
	applyJob *sched.Job // sched mode with -faults: background apply under injected errors
	wakeups  atomic.Int64
}

func classify(err error) sched.Outcome {
	switch {
	case err == nil:
		return sched.Progress
	case errors.Is(err, core.ErrNoProgress):
		return sched.Idle
	case errors.Is(err, capture.ErrStopped):
		return sched.Halt
	default:
		return sched.Fail
	}
}

func run(kind, mode string, n, dims, rows, updates, views, maint int, interval int64, adaptive int, indexed, cached bool, workers, partitions, batch int, skew float64, report time.Duration, seed, faults int64) error {
	var w *workload.Workload
	switch kind {
	case "chain":
		w = workload.Chain(n, rows, rows/10+1)
	case "star":
		w = workload.StarSchemaSkewed(dims, rows, rows/10+1, 20, skew)
	default:
		return fmt.Errorf("unknown workload %q", kind)
	}
	if mode != "sched" && mode != "poll" {
		return fmt.Errorf("unknown mode %q (sched or poll)", mode)
	}
	if faults > 0 && mode != "sched" {
		return errors.New("-faults requires -mode sched (errors flow into the scheduler's backoff path)")
	}
	if views < 1 {
		views = 1
	}

	db, err := engine.Open(engine.Config{Partitions: partitions, BatchSize: batch})
	if err != nil {
		return err
	}
	defer db.Close()
	if err := w.Setup(db, rand.New(rand.NewSource(seed))); err != nil {
		return err
	}
	if indexed {
		for _, spec := range w.Tables {
			if _, err := db.CreateIndex(spec.Name, "k"); err != nil {
				return err
			}
		}
	}
	db.SetJoinCache(cached)
	cap := capture.NewLogCapture(db)
	cap.Start()

	schema, err := w.View.Schema(db)
	if err != nil {
		return err
	}
	insts := make([]*viewInst, views)
	for i := range insts {
		name := "Δ" + w.View.Name
		if i > 0 {
			name = fmt.Sprintf("Δ%s#%d", w.View.Name, i)
		}
		dest, err := db.CreateStandaloneDelta(name, schema)
		if err != nil {
			return err
		}
		exec := core.NewExecutor(db, cap, w.View, dest)
		exec.SetWorkers(workers)
		exec.Metrics = core.NewExecMetrics()
		mv, err := core.Materialize(db, w.View)
		if err != nil {
			return err
		}
		var policy core.IntervalPolicy
		if adaptive > 0 {
			policy = core.AdaptiveInterval(db, w.View, adaptive)
		} else {
			policy = core.FixedInterval(relalg.CSN(interval))
		}
		rp := core.NewRollingPropagator(exec, mv.MatTime(), policy)
		insts[i] = &viewInst{
			exec: exec, mv: mv, dest: dest, rp: rp,
			applier: core.NewApplier(mv, dest, rp.HWM),
		}
	}

	// Maintenance drivers: one scheduler for every view, or one polling
	// goroutine per view (the pre-scheduler architecture).
	var s *sched.Scheduler
	pollStop := make(chan struct{})
	pollErr := make(chan error, views)
	var pollWG sync.WaitGroup
	if mode == "sched" {
		s = sched.New(maint)
		defer s.Close()
		if faults > 0 {
			// Chaos smoke: every Nth apply fails with a transient I/O error,
			// which must ride the scheduler's retry/backoff path instead of
			// killing the run.
			fault.Set(fault.PointApply, fault.ErrEvery(faults, fault.ErrInjected))
		}
		for i, inst := range insts {
			if db.Partitions() > 1 {
				// Per-slice jobs of a partitioned step fan out to the
				// shared maintenance pool.
				inst.exec.Spawn = s.TrySpawn
			}
			opts := sched.Options{
				HWM:          inst.rp.HWM,
				Classify:     classify,
				WakeOnNotify: true,
			}
			if faults > 0 {
				inst := inst
				inst.applyJob = s.Register(fmt.Sprintf("apply:%d", i), func() error {
					before := inst.mv.MatTime()
					t, err := inst.applier.RollToHWM()
					if err != nil {
						return err
					}
					if t <= before {
						return core.ErrNoProgress
					}
					return nil
				}, sched.Options{Classify: classify})
				inst.applyJob.Start()
				opts.OnProgress = inst.applyJob.Kick
			}
			inst.job = s.Register(fmt.Sprintf("prop:%d", i), inst.rp.Step, opts)
			inst.job.Start()
		}
		cap.OnProgress(func(csn relalg.CSN) { s.Notify(csn) })
	} else {
		for _, inst := range insts {
			inst := inst
			pollWG.Add(1)
			go func() {
				defer pollWG.Done()
				for {
					select {
					case <-pollStop:
						return
					default:
					}
					inst.wakeups.Add(1)
					if err := inst.rp.Step(); err != nil {
						if errors.Is(err, core.ErrNoProgress) {
							select {
							case <-pollStop:
								return
							case <-time.After(time.Millisecond):
							}
							continue
						}
						pollErr <- err
						return
					}
				}
			}()
		}
	}

	fmt.Printf("workload=%s mode=%s views=%d view=%s relations=%d initial-rows=%d updates=%d partitions=%d batch=%d\n\n",
		kind, mode, views, w.View.Name, w.View.N(), rows, updates, db.Partitions(), db.BatchSize())

	minHWM := func() relalg.CSN {
		h := insts[0].rp.HWM()
		for _, inst := range insts[1:] {
			if v := inst.rp.HWM(); v < h {
				h = v
			}
		}
		return h
	}
	sumStats := func() (fwd, comp, skipped, produced, batches int64) {
		for _, inst := range insts {
			es := inst.exec.Stats()
			fwd += es.ForwardQueries
			comp += es.CompensationQueries
			skipped += es.SkippedEmpty
			produced += es.RowsProduced
			batches += es.BatchesProduced
		}
		return
	}

	driver := workload.NewDriver(db, w, seed+1)
	lat := metrics.NewHistogram()
	allocs := metrics.NewAllocSampler()
	start := time.Now()
	lastReport := start
	var reported, reportedPropRows int64
	var last relalg.CSN
	for i := 0; i < updates; i++ {
		st := time.Now()
		csn, err := driver.Step()
		if err != nil {
			return err
		}
		lat.Observe(time.Since(st))
		last = csn
		if time.Since(lastReport) >= report {
			fwd, comp, skipped, _, _ := sumStats()
			done := driver.Committed()
			since := time.Since(lastReport).Seconds()
			rate := float64(done-reported) / since
			propRows := insts[0].exec.Metrics.Rows.Sum()
			propRate := float64(propRows-reportedPropRows) / since
			hwm := minHWM()
			fmt.Printf("t=%-6s txns=%-7d rate=%7.0f/s  p99=%-9s hwm=%-7d lag=%-6d fwd=%-5d comp=%-5d skipped=%-5d prop=%6.0frows/s q-p99=%s\n",
				time.Since(start).Round(time.Second), done, rate,
				lat.Quantile(0.99).Round(time.Microsecond),
				int64(hwm), int64(last-hwm),
				fwd, comp, skipped,
				propRate, insts[0].exec.Metrics.Latency.Quantile(0.99).Round(time.Microsecond))
			lastReport = time.Now()
			reported = done
			reportedPropRows = propRows
		}
	}
	wall := time.Since(start)
	var faultTrips int64

	// Drain event-driven (sched mode waits on job progress broadcasts; poll
	// mode's loops keep stepping until every HWM reaches the last commit),
	// then stop maintenance, refresh, and verify against recomputation.
	if mode == "sched" {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		for _, inst := range insts {
			target := last
			inst.job.Demand(target)
			if err := inst.job.Await(ctx, func() bool { return inst.rp.HWM() >= target }); err != nil {
				return err
			}
			if err := inst.job.Stop(); err != nil {
				return err
			}
		}
		for _, inst := range insts {
			if inst.applyJob == nil {
				continue
			}
			inst.applyJob.Kick()
			target := inst.rp.HWM()
			if err := inst.applyJob.Await(ctx, func() bool { return inst.mv.MatTime() >= target }); err != nil {
				return err
			}
			if err := inst.applyJob.Stop(); err != nil {
				return err
			}
		}
		// Verification below recomputes without injection. Reset clears the
		// counters too, so note the trip count first for the summary.
		faultTrips = fault.Trips(fault.PointApply)
		fault.Reset()
	} else {
		for _, inst := range insts {
			for inst.rp.HWM() < last {
				time.Sleep(time.Millisecond)
			}
		}
		close(pollStop)
		pollWG.Wait()
		select {
		case err := <-pollErr:
			return err
		default:
		}
	}
	full, csn, err := core.FullRefresh(db, w.View)
	if err != nil {
		return err
	}
	ok := true
	for _, inst := range insts {
		for inst.rp.HWM() < csn {
			if err := inst.rp.Step(); err != nil && !errors.Is(err, core.ErrNoProgress) {
				return err
			}
		}
		if err := inst.applier.RollTo(csn); err != nil {
			return err
		}
		if !relalg.Equivalent(inst.mv.AsRelation(), full) {
			ok = false
		}
	}

	// Reclaim dead row versions now that no snapshot needs them, so the
	// summary shows the retain/collect cycle.
	db.GCVersions()

	fwd, comp, skipped, produced, batches := sumStats()
	st := db.Stats()
	fmt.Printf("\n--- summary ---\n")
	fmt.Printf("updates:              %d in %s (%.0f/s)\n", updates, wall.Round(time.Millisecond), float64(updates)/wall.Seconds())
	fmt.Printf("writer latency:       mean %s  p99 %s  max %s\n",
		lat.Mean().Round(time.Microsecond), lat.Quantile(0.99).Round(time.Microsecond), lat.Max().Round(time.Microsecond))
	fmt.Printf("propagation:          %d forward + %d compensation queries, %d skipped empty (%d views, %d workers)\n",
		fwd, comp, skipped, views, insts[0].exec.Workers())
	fmt.Printf("query latency:        mean %s  p99 %s  max %s\n",
		insts[0].exec.Metrics.Latency.Mean().Round(time.Microsecond),
		insts[0].exec.Metrics.Latency.Quantile(0.99).Round(time.Microsecond),
		insts[0].exec.Metrics.Latency.Max().Round(time.Microsecond))
	fmt.Printf("delta rows produced:  %d in %d batches (view now %d tuples)\n",
		produced, batches, insts[0].mv.Cardinality())
	if mode == "sched" {
		ss := s.Stats()
		fmt.Printf("scheduler:            %d wakeups, %d steps, %d notifies, %d parks, %d backoffs (%d workers)\n",
			ss.Wakeups, ss.Steps, ss.Notifies, ss.Parks, ss.Backoffs, ss.Workers)
		if faults > 0 {
			fmt.Printf("faults:               %d transient errors injected at %s (every %d applies), %d backoff retries absorbed them\n",
				faultTrips, fault.PointApply, faults, ss.Backoffs)
		}
	} else {
		var wakeups int64
		for _, inst := range insts {
			wakeups += inst.wakeups.Load()
		}
		fmt.Printf("polling:              %d wakeups across %d per-view loops\n", wakeups, views)
	}
	fmt.Printf("engine:               %d rows scanned, %d joined, %d index probes\n",
		st.RowsScanned, st.RowsJoined, st.IndexProbes)
	if st.BatchesProduced > 0 {
		rowsPerBatch := float64(st.BatchRows) / float64(st.BatchesProduced)
		keepPct := 100.0
		if st.FilterRowsIn > 0 {
			keepPct = 100 * float64(st.FilterRowsKept) / float64(st.FilterRowsIn)
		}
		fmt.Printf("batch pipeline:       %d batches (%.1f rows/batch, cap %d), filters kept %d/%d rows (%.0f%%), arena ~%d KiB\n",
			st.BatchesProduced, rowsPerBatch, db.BatchSize(),
			st.FilterRowsKept, st.FilterRowsIn, keepPct, st.ArenaBytes/1024)
	}
	if st.Partitions > 1 {
		var sliceJobs int64
		for _, v := range st.PartSliceJobs {
			sliceJobs += v
		}
		fmt.Printf("partitions:           %d-way, %d slice jobs, %d heavy keys, %d migrations\n",
			st.Partitions, sliceJobs, st.HeavyKeys, st.KeyMigrations)
		fmt.Printf("  per partition:      scanned=%v delta=%v jobs=%v cache=%v\n",
			st.PartRowsScanned, st.PartDeltaRows, st.PartSliceJobs, st.PartCacheRows)
	}
	if cached {
		fmt.Printf("join cache:           %d hits, %d misses, %d maint rows, %d builds, %d rows resident (~%d KiB)\n",
			st.CacheHits, st.CacheMisses, st.CacheMaintRows, st.CacheBuilds,
			st.CacheResidentRows, st.CacheResidentBytes/1024)
	}
	a := allocs.Sample()
	fmt.Printf("allocations:          %d objects, %d MiB since driver start\n",
		a.Mallocs, a.Bytes/(1<<20))
	fmt.Printf("locks:                %d waits, %s total wait, %d deadlocks\n",
		st.Txn.LockWaits, st.Txn.LockWaitTime.Round(time.Microsecond), st.Txn.Deadlocks)
	fmt.Printf("snapshots:            %d opened, %d publish-barrier stalls, %d dead versions retained, %d collected\n",
		st.SnapshotsOpened, st.PublishStalls, st.VersionsRetained, st.VersionsCollected)
	if ok {
		fmt.Printf("verification:         %d rolled view(s) match full recomputation ✓\n", views)
		return nil
	}
	return fmt.Errorf("verification FAILED: rolled view diverged from recomputation")
}
