// Command rollbench runs the experiment suite of EXPERIMENTS.md and prints
// the paper-style result tables.
//
// Usage:
//
//	rollbench [-quick] [-run F4,E1,...]
//
// Without -run, every experiment executes. Each experiment self-verifies
// (results are checked against recomputation oracles) and the command exits
// non-zero on any failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
)

type experiment struct {
	id   string
	desc string
	run  func(bench.Scale) (fmt.Stringer, error)
}

func main() {
	quick := flag.Bool("quick", false, "run at reduced scale")
	run := flag.String("run", "", "comma-separated experiment ids (default: all)")
	flag.Parse()
	scale := bench.Scale{Quick: *quick}

	experiments := []experiment{
		{"F4", "ComputeDelta query structure (Figure 4 / Equation 3)",
			func(bench.Scale) (fmt.Stringer, error) { return bench.F4() }},
		{"F7", "region coverage of ComputeDelta (Figure 7)",
			func(bench.Scale) (fmt.Stringer, error) { return bench.F7() }},
		{"F8", "Propagate iteration schedule (Figure 8)",
			func(bench.Scale) (fmt.Stringer, error) { return bench.F8() }},
		{"F9", "RollingPropagate schedule with per-relation intervals (Figure 9)",
			func(bench.Scale) (fmt.Stringer, error) { return bench.F9() }},
		{"E1", "incremental vs full refresh",
			func(s bench.Scale) (fmt.Stringer, error) { return bench.E1(s) }},
		{"E2", "writer contention vs propagation interval",
			func(s bench.Scale) (fmt.Stringer, error) { return bench.E2(s) }},
		{"E3", "asynchronous deferral of propagation work",
			func(s bench.Scale) (fmt.Stringer, error) { return bench.E3(s) }},
		{"E4", "point-in-time refresh cost",
			func(s bench.Scale) (fmt.Stringer, error) { return bench.E4(s) }},
		{"E5", "query budget: Eq.1 vs Eq.2 vs asynchronous",
			func(s bench.Scale) (fmt.Stringer, error) { return bench.E5(s) }},
		{"E6", "star schema: per-relation intervals",
			func(s bench.Scale) (fmt.Stringer, error) { return bench.E6(s) }},
		{"E7", "capture architectures: log vs trigger",
			func(s bench.Scale) (fmt.Stringer, error) { return bench.E7(s) }},
		{"A1", "ablation: index nested-loop vs full-scan propagation",
			func(s bench.Scale) (fmt.Stringer, error) { return bench.A1(s) }},
		{"A2", "ablation: fixed vs adaptive propagation intervals",
			func(s bench.Scale) (fmt.Stringer, error) { return bench.A2(s) }},
	}

	selected := map[string]bool{}
	if *run != "" {
		for _, id := range strings.Split(*run, ",") {
			selected[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	failed := 0
	for _, e := range experiments {
		if len(selected) > 0 && !selected[e.id] {
			continue
		}
		fmt.Printf("=== %s: %s ===\n", e.id, e.desc)
		start := time.Now()
		tbl, err := e.run(scale)
		if tbl != nil {
			fmt.Println(tbl.String())
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s FAILED: %v\n", e.id, err)
			failed++
		} else {
			fmt.Printf("(%s verified in %s)\n\n", e.id, time.Since(start).Round(time.Millisecond))
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "%d experiment(s) failed\n", failed)
		os.Exit(1)
	}
}
