// Command rollbench runs the experiment suite of EXPERIMENTS.md and prints
// the paper-style result tables.
//
// Usage:
//
//	rollbench [-quick] [-run F4,E1,...] [-json BENCH_rollbench.json]
//
// Without -run, every experiment executes. Each experiment self-verifies
// (results are checked against recomputation oracles) and the command exits
// non-zero on any failure. Alongside the text tables, a machine-readable
// summary — per-experiment wall time, engine counters (rows scanned/joined,
// query and index-probe counts), and the operator-pipeline A/B speedups —
// is written to the -json path ("" disables it).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
)

type experiment struct {
	id   string
	desc string
	run  func(bench.Scale) (fmt.Stringer, error)
}

// experimentResult is one experiment's machine-readable record.
type experimentResult struct {
	ID             string `json:"id"`
	Desc           string `json:"desc"`
	OK             bool   `json:"ok"`
	Ns             int64  `json:"ns"`
	RowsScanned    int64  `json:"rows_scanned"`
	RowsJoined     int64  `json:"rows_joined"`
	QueriesRun     int64  `json:"queries_run"`
	IndexProbes    int64  `json:"index_probes"`
	CacheHits      int64  `json:"cache_hits,omitempty"`
	CacheMisses    int64  `json:"cache_misses,omitempty"`
	CacheMaintRows int64  `json:"cache_maint_rows,omitempty"`
}

// report is the top-level BENCH_rollbench.json document.
type report struct {
	Quick       bool                     `json:"quick"`
	Experiments []experimentResult       `json:"experiments"`
	PipelineAB  []bench.ABEntry          `json:"pipeline_ab,omitempty"`
	CacheAB     []bench.CacheABEntry     `json:"cache_ab,omitempty"`
	SnapshotAB  []bench.SnapshotABEntry  `json:"snapshot_ab,omitempty"`
	MultiViewAB []bench.MultiViewABEntry `json:"multiview_ab,omitempty"`
	PartitionAB []bench.PartitionABEntry `json:"partition_ab,omitempty"`
	BatchAB     []bench.BatchABEntry     `json:"batch_ab,omitempty"`
	CascadeAB   []bench.CascadeABEntry   `json:"cascade_ab,omitempty"`
	CompactAB   []bench.CompactABEntry   `json:"compact_ab,omitempty"`
	Failed      int                      `json:"failed"`
}

func main() {
	quick := flag.Bool("quick", false, "run at reduced scale")
	run := flag.String("run", "", "comma-separated experiment ids (default: all)")
	jsonPath := flag.String("json", "BENCH_rollbench.json", "machine-readable output path (empty to disable)")
	flag.Parse()
	scale := bench.Scale{Quick: *quick}

	var abEntries []bench.ABEntry
	var cacheEntries []bench.CacheABEntry
	var snapshotEntries []bench.SnapshotABEntry
	var multiViewEntries []bench.MultiViewABEntry
	var partitionEntries []bench.PartitionABEntry
	var batchEntries []bench.BatchABEntry
	var cascadeEntries []bench.CascadeABEntry
	var compactEntries []bench.CompactABEntry
	experiments := []experiment{
		{"F4", "ComputeDelta query structure (Figure 4 / Equation 3)",
			func(bench.Scale) (fmt.Stringer, error) { return bench.F4() }},
		{"F7", "region coverage of ComputeDelta (Figure 7)",
			func(bench.Scale) (fmt.Stringer, error) { return bench.F7() }},
		{"F8", "Propagate iteration schedule (Figure 8)",
			func(bench.Scale) (fmt.Stringer, error) { return bench.F8() }},
		{"F9", "RollingPropagate schedule with per-relation intervals (Figure 9)",
			func(bench.Scale) (fmt.Stringer, error) { return bench.F9() }},
		{"E1", "incremental vs full refresh",
			func(s bench.Scale) (fmt.Stringer, error) { return bench.E1(s) }},
		{"E2", "writer contention vs propagation interval",
			func(s bench.Scale) (fmt.Stringer, error) { return bench.E2(s) }},
		{"E3", "asynchronous deferral of propagation work",
			func(s bench.Scale) (fmt.Stringer, error) { return bench.E3(s) }},
		{"E4", "point-in-time refresh cost",
			func(s bench.Scale) (fmt.Stringer, error) { return bench.E4(s) }},
		{"E5", "query budget: Eq.1 vs Eq.2 vs asynchronous",
			func(s bench.Scale) (fmt.Stringer, error) { return bench.E5(s) }},
		{"E6", "star schema: per-relation intervals",
			func(s bench.Scale) (fmt.Stringer, error) { return bench.E6(s) }},
		{"E7", "capture architectures: log vs trigger",
			func(s bench.Scale) (fmt.Stringer, error) { return bench.E7(s) }},
		{"A1", "ablation: index nested-loop vs full-scan propagation",
			func(s bench.Scale) (fmt.Stringer, error) { return bench.A1(s) }},
		{"A2", "ablation: fixed vs adaptive propagation intervals",
			func(s bench.Scale) (fmt.Stringer, error) { return bench.A2(s) }},
		{"AB", "operator pipeline vs materializing executor",
			func(s bench.Scale) (fmt.Stringer, error) {
				tbl, entries, err := bench.PipelineAB(s)
				abEntries = entries
				return tbl, err
			}},
		{"CACHE", "join-state cache vs scan and index propagation",
			func(s bench.Scale) (fmt.Stringer, error) {
				tbl, entries, err := bench.CacheAB(s)
				cacheEntries = entries
				return tbl, err
			}},
		{"SNAPSHOT", "read-view reads vs S-lock scans under concurrent writers",
			func(s bench.Scale) (fmt.Stringer, error) {
				tbl, entries, err := bench.SnapshotAB(s)
				snapshotEntries = entries
				return tbl, err
			}},
		{"MULTIVIEW", "shared maintenance scheduler vs per-view polling at fan-out",
			func(s bench.Scale) (fmt.Stringer, error) {
				tbl, entries, err := bench.MultiViewAB(s)
				multiViewEntries = entries
				return tbl, err
			}},
		{"PARTITION", "1 vs N partitions vs N+heavy/light on a skewed star schema",
			func(s bench.Scale) (fmt.Stringer, error) {
				tbl, entries, err := bench.PartitionAB(s)
				partitionEntries = entries
				return tbl, err
			}},
		{"BATCH", "row vs columnar batch layout vs columnar+arena",
			func(s bench.Scale) (fmt.Stringer, error) {
				tbl, entries, err := bench.BatchAB(s)
				batchEntries = entries
				return tbl, err
			}},
		{"CASCADE", "3-level cascade refresh vs full recomputation",
			func(s bench.Scale) (fmt.Stringer, error) {
				tbl, entries, err := bench.CascadeAB(s)
				cascadeEntries = entries
				return tbl, err
			}},
		{"COMPACT", "storage tiering: fold + incremental checkpoint vs unbounded",
			func(s bench.Scale) (fmt.Stringer, error) {
				tbl, entries, err := bench.CompactAB(s)
				compactEntries = entries
				return tbl, err
			}},
	}

	selected := map[string]bool{}
	if *run != "" {
		known := map[string]bool{}
		for _, e := range experiments {
			known[e.id] = true
		}
		for _, id := range strings.Split(*run, ",") {
			id = strings.ToUpper(strings.TrimSpace(id))
			if !known[id] {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (have F4 F7 F8 F9 E1–E7 A1 A2 AB CACHE SNAPSHOT MULTIVIEW PARTITION BATCH CASCADE COMPACT)\n", id)
				os.Exit(2)
			}
			selected[id] = true
		}
	}

	rep := report{Quick: *quick}
	for _, e := range experiments {
		if len(selected) > 0 && !selected[e.id] {
			continue
		}
		fmt.Printf("=== %s: %s ===\n", e.id, e.desc)
		bench.ResetCounters()
		start := time.Now()
		tbl, err := e.run(scale)
		elapsed := time.Since(start)
		if tbl != nil {
			fmt.Println(tbl.String())
		}
		c := bench.Counters()
		rep.Experiments = append(rep.Experiments, experimentResult{
			ID:             e.id,
			Desc:           e.desc,
			OK:             err == nil,
			Ns:             elapsed.Nanoseconds(),
			RowsScanned:    c.RowsScanned,
			RowsJoined:     c.RowsJoined,
			QueriesRun:     c.QueriesRun,
			IndexProbes:    c.IndexProbes,
			CacheHits:      c.CacheHits,
			CacheMisses:    c.CacheMisses,
			CacheMaintRows: c.CacheMaintRows,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s FAILED: %v\n", e.id, err)
			rep.Failed++
		} else {
			fmt.Printf("(%s verified in %s)\n\n", e.id, elapsed.Round(time.Millisecond))
		}
	}
	rep.PipelineAB = abEntries
	rep.CacheAB = cacheEntries
	rep.SnapshotAB = snapshotEntries
	rep.MultiViewAB = multiViewEntries
	rep.PartitionAB = partitionEntries
	rep.BatchAB = batchEntries
	rep.CascadeAB = cascadeEntries
	rep.CompactAB = compactEntries

	if *jsonPath != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err == nil {
			buf = append(buf, '\n')
			err = os.WriteFile(*jsonPath, buf, 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *jsonPath, err)
			rep.Failed++
		} else {
			fmt.Printf("wrote %s\n", *jsonPath)
		}
	}
	if rep.Failed > 0 {
		fmt.Fprintf(os.Stderr, "%d experiment(s) failed\n", rep.Failed)
		os.Exit(1)
	}
}
