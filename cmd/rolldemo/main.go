// Command rolldemo walks through the rolling propagation algorithm on a
// two-table join, printing every propagation query as it executes along
// with the per-relation progress and the high-water mark — a textual
// rendition of the paper's Figure 9.
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/relalg"
	"repro/internal/workload"
)

func main() {
	updates := flag.Int("updates", 30, "update transactions to generate")
	d1 := flag.Int64("d1", 4, "propagation interval for R1 (commits)")
	d2 := flag.Int64("d2", 12, "propagation interval for R2 (commits)")
	flag.Parse()

	if err := run(*updates, relalg.CSN(*d1), relalg.CSN(*d2)); err != nil {
		fmt.Fprintln(os.Stderr, "rolldemo:", err)
		os.Exit(1)
	}
}

func run(updates int, d1, d2 relalg.CSN) error {
	env, err := bench.NewEnv(workload.Chain(2, 20, 5), 1)
	if err != nil {
		return err
	}
	defer env.Close()
	env.Exec.SkipEmptyWindows = false

	fmt.Printf("View: V = r1 ⋈ r2 on k;   intervals δ = [%d, %d] commits\n", d1, d2)
	fmt.Printf("Generating %d single-row update transactions...\n\n", updates)
	driver := workload.NewDriver(env.DB, env.W, 2)
	last, err := driver.Run(updates)
	if err != nil {
		return err
	}
	if err := env.Cap.WaitProgress(last); err != nil {
		return err
	}

	env.Exec.OnQuery = func(e core.TraceEntry) {
		indent := ""
		for i := 0; i < e.Depth; i++ {
			indent += "    "
		}
		fmt.Printf("  %s[%s] %-42s exec t=%-4d rows=%d\n", indent, e.Kind, e.Query, int64(e.Exec), e.Rows)
	}

	rp := core.NewRollingPropagator(env.Exec, 0, core.PerRelationIntervals(d1, d2))
	step := 0
	for rp.HWM() < last {
		step++
		fmt.Printf("step %d:\n", step)
		if err := rp.Step(); err != nil {
			if errors.Is(err, core.ErrNoProgress) {
				continue
			}
			return err
		}
		tf := rp.TFwd()
		fmt.Printf("  -> tfwd = [%d, %d], high-water mark = %d\n\n", int64(tf[0]), int64(tf[1]), int64(rp.HWM()))
	}

	// Roll the materialized view to a random intermediate point, then to
	// the high-water mark, demonstrating point-in-time refresh.
	schema, err := env.W.View.Schema(env.DB)
	if err != nil {
		return err
	}
	mv := core.NewMaterializedView("demo", schema, 0)
	applier := core.NewApplier(mv, env.Dest, rp.HWM)
	mid := relalg.CSN(rand.New(rand.NewSource(3)).Int63n(int64(last)) + 1)
	if err := applier.RollTo(mid); err != nil {
		return err
	}
	fmt.Printf("point-in-time refresh to t=%d: view has %d tuples\n", int64(mid), mv.Cardinality())
	if _, err := applier.RollToHWM(); err != nil {
		return err
	}
	fmt.Printf("refresh to high-water mark t=%d: view has %d tuples\n", int64(rp.HWM()), mv.Cardinality())

	full, _, err := core.FullRefresh(env.DB, env.W.View)
	if err != nil {
		return err
	}
	if relalg.Equivalent(mv.AsRelation(), full) {
		fmt.Println("rolled view matches full recomputation ✓")
	} else {
		return errors.New("rolled view DIVERGED from recomputation")
	}
	st := env.Exec.Stats()
	fmt.Printf("\ntotals: %d forward + %d compensation queries, %d delta rows\n",
		st.ForwardQueries, st.CompensationQueries, st.RowsProduced)
	return nil
}
