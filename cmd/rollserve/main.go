// Command rollserve serves a rollingjoin database over HTTP — commits,
// ad-hoc queries, point-in-time materialization, view-delta subscriptions
// — and replicates it: a leader ships its write-ahead log to followers,
// which replay it locally and maintain their own views against the
// leader's commit sequence.
//
// Leader:
//
//	rollserve -addr :7070 -wal leader.wal -sync -init schema.sql
//
// Follower (read replica of the leader above):
//
//	rollserve -addr :7071 -leader http://127.0.0.1:7070 -init schema.sql
//
// DDL is local: leader and followers run the same -init script (tables
// and view definitions); only committed data travels on the wire.
//
// -smoke runs an in-process leader + workload + follower over real TCP
// sockets, kills the leader mid-ship, restarts it, and verifies the
// follower converges to the leader's recomputed view — the CI
// replication check.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	rollingjoin "repro"
	"repro/internal/repl"
	"repro/internal/sql"
	"repro/internal/tuple"
)

func main() {
	var (
		addr   = flag.String("addr", "127.0.0.1:7070", "HTTP listen address")
		leader = flag.String("leader", "", "leader base URL; non-empty opens a follower replica")
		wal    = flag.String("wal", "", "WAL file path (empty: in-memory)")
		sync   = flag.Bool("sync", false, "fsync the WAL inside every commit")
		init   = flag.String("init", "", "SQL script executed at startup (DDL on followers)")
		smoke  = flag.Bool("smoke", false, "run the in-process replication smoke check and exit")
	)
	flag.Parse()
	if *smoke {
		if err := runSmoke(); err != nil {
			fmt.Fprintln(os.Stderr, "rollserve smoke: FAIL:", err)
			os.Exit(1)
		}
		fmt.Println("rollserve smoke: PASS")
		return
	}
	if err := run(*addr, *leader, *wal, *sync, *init); err != nil {
		fmt.Fprintln(os.Stderr, "rollserve:", err)
		os.Exit(1)
	}
}

func run(addr, leaderURL, walPath string, syncCommits bool, initScript string) error {
	db, err := rollingjoin.Open(rollingjoin.Options{
		WALPath:      walPath,
		SyncOnCommit: syncCommits,
		Follower:     leaderURL != "",
	})
	if err != nil {
		return err
	}
	defer db.Close()
	if initScript != "" {
		script, err := os.ReadFile(initScript)
		if err != nil {
			return err
		}
		if _, err := sql.NewSession(db).Exec(string(script)); err != nil {
			return fmt.Errorf("init script: %w", err)
		}
	}
	if walPath != "" && leaderURL == "" {
		// A reopened leader replays its log once the catalog exists.
		if _, err := db.Recover(); err != nil {
			return fmt.Errorf("recover: %w", err)
		}
	}

	srv := &http.Server{Addr: addr, Handler: repl.NewServer(db).Handler()}
	var tailer *repl.Tailer
	role := "leader"
	if leaderURL != "" {
		role = "follower of " + leaderURL
		tailer = repl.NewTailer(db, leaderURL)
		tailer.Start()
		defer tailer.Stop()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("rollserve: %s listening on %s\n", role, addr)
	select {
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return srv.Shutdown(shutCtx)
	case err := <-errc:
		return err
	}
}

// --- smoke check ---

var smokeSpec = rollingjoin.ViewSpec{
	Name:   "big",
	Tables: []string{"users", "orders"},
	Joins: []rollingjoin.Join{{
		LeftTable: "users", LeftColumn: "id",
		RightTable: "orders", RightColumn: "uid",
	}},
	Filters: []rollingjoin.Filter{{
		Table: "orders", Column: "amount", Op: rollingjoin.GE, Value: rollingjoin.Int(10),
	}},
	Output: []rollingjoin.OutCol{
		{Table: "users", Column: "name"},
		{Table: "orders", Column: "amount"},
	},
}

func smokeSchema(db *rollingjoin.DB) (*rollingjoin.View, error) {
	if err := db.CreateTable("users",
		rollingjoin.Col("id", rollingjoin.TypeInt),
		rollingjoin.Col("name", rollingjoin.TypeString),
	); err != nil {
		return nil, err
	}
	if err := db.CreateTable("orders",
		rollingjoin.Col("uid", rollingjoin.TypeInt),
		rollingjoin.Col("amount", rollingjoin.TypeInt),
	); err != nil {
		return nil, err
	}
	return db.DefineView(smokeSpec, rollingjoin.Maintain{Interval: 1})
}

func sortedEncoded(rows []rollingjoin.Tuple) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = string(tuple.EncodeRow(nil, tuple.Tuple(r)))
	}
	sort.Strings(out)
	return out
}

// serveOn binds addr and serves the handler until the returned server is
// closed. addr "" picks an ephemeral port; the actual address is returned.
func serveOn(addr string, h http.Handler) (*http.Server, string, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: h}
	go srv.Serve(lis)
	return srv, lis.Addr().String(), nil
}

func runSmoke() error {
	leader, err := rollingjoin.Open(rollingjoin.Options{})
	if err != nil {
		return err
	}
	defer leader.Close()
	lv, err := smokeSchema(leader)
	if err != nil {
		return err
	}
	handler := repl.NewServer(leader).Handler()
	srv, addr, err := serveOn("", handler)
	if err != nil {
		return err
	}

	follower, err := rollingjoin.Open(rollingjoin.Options{Follower: true})
	if err != nil {
		return err
	}
	defer follower.Close()
	fv, err := smokeSchema(follower)
	if err != nil {
		return err
	}
	tailer := repl.NewTailer(follower, "http://"+addr)
	tailer.Start()
	defer tailer.Stop()

	commit := func(i int) error {
		_, err := leader.Update(func(tx *rollingjoin.Tx) error {
			if err := tx.Insert("users", rollingjoin.Int(int64(i)), rollingjoin.Str(fmt.Sprintf("u%d", i))); err != nil {
				return err
			}
			return tx.Insert("orders", rollingjoin.Int(int64(i)), rollingjoin.Int(int64(i%30)))
		})
		return err
	}
	for i := 0; i < 100; i++ {
		if err := commit(i); err != nil {
			return err
		}
	}

	// Kill the leader's server mid-ship (active streams included), keep
	// committing through the outage, then restart on the same address: the
	// tailer must hold its consistent prefix and reconnect on its own.
	if err := srv.Close(); err != nil {
		return err
	}
	for i := 100; i < 150; i++ {
		if err := commit(i); err != nil {
			return err
		}
	}
	var srv2 *http.Server
	for tries := 0; ; tries++ {
		srv2, _, err = serveOn(addr, handler)
		if err == nil {
			break
		}
		if tries >= 100 {
			return fmt.Errorf("rebind %s: %w", addr, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	defer srv2.Close()
	for i := 150; i < 200; i++ {
		if err := commit(i); err != nil {
			return err
		}
	}

	// Quiesce and converge: drive leader propagation through every commit
	// above, so the HWM snapshot covers the whole workload.
	target := leader.LastCSN()
	if err := lv.CatchUp(target); err != nil {
		return err
	}
	hwm := lv.HWM()
	deadline := time.Now().Add(30 * time.Second)
	for follower.AppliedCSN() < target {
		if time.Now().After(deadline) {
			return fmt.Errorf("follower stuck at CSN %d, want %d (tailer err: %v)",
				follower.AppliedCSN(), target, tailer.Err())
		}
		time.Sleep(5 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := fv.WaitForHWMContext(ctx, hwm); err != nil {
		return fmt.Errorf("follower HWM %d, want %d: %w", fv.HWM(), hwm, err)
	}

	// The follower's maintained view must equal the leader's from-scratch
	// recomputation over its base tables.
	spec := smokeSpec
	spec.Name = "recompute"
	recomputed, err := leader.Query(spec)
	if err != nil {
		return err
	}
	got, err := fv.MaterializeAt(hwm)
	if err != nil {
		return err
	}
	want := sortedEncoded(recomputed.Rows)
	have := sortedEncoded(got)
	if len(want) != len(have) {
		return fmt.Errorf("cardinality: leader recomputes %d rows, follower view has %d", len(want), len(have))
	}
	for i := range want {
		if want[i] != have[i] {
			return fmt.Errorf("row %d differs between leader recomputation and follower view", i)
		}
	}
	if len(want) == 0 {
		return errors.New("empty view — smoke workload did not exercise the join")
	}
	if err := tailer.Err(); err != nil {
		return fmt.Errorf("tailer: %w", err)
	}
	st := follower.Engine().Stats()
	fmt.Printf("rollserve smoke: %d rows converged; follower CSN %d, reconnects %d, %d bytes shipped\n",
		len(have), st.Repl.FollowerCSN, st.Repl.Reconnects, st.Repl.BytesShipped)
	if st.Repl.Reconnects == 0 {
		return errors.New("leader kill did not force a reconnect")
	}
	return nil
}
