package rollingjoin

import (
	"path/filepath"
	"testing"
	"time"

	"repro/internal/relalg"
	"repro/internal/wal"
)

// TestFoldReclaimsDeltaPrefix drives a view to its high-water mark,
// folds, and checks the delta prefix actually shrank while the view
// still answers point-in-time refreshes above the fold line exactly.
func TestFoldReclaimsDeltaPrefix(t *testing.T) {
	db := newTestDB(t, Options{})
	if _, err := db.Update(func(tx *Tx) error {
		for _, it := range crashItems {
			if err := tx.Insert("items", Str(it.name), Int(it.price)); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	view, err := db.DefineView(orderPricesSpec(), Maintain{Interval: 1})
	if err != nil {
		t.Fatal(err)
	}
	var last CSN
	for i := 0; i < 20; i++ {
		last, err = db.Update(func(tx *Tx) error {
			return tx.Insert("orders", Int(int64(i)), Str(crashItems[i%3].name))
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	view.WaitForHWM(last)
	if _, err := view.Refresh(); err != nil {
		t.Fatal(err)
	}

	d, _ := db.Engine().Delta("orders")
	before := d.Len()
	if err := db.Fold(); err != nil {
		t.Fatal(err)
	}
	if got := d.Len(); got >= before {
		t.Fatalf("fold left orders delta at %d rows (was %d)", got, before)
	}
	st := db.Engine().Stats()
	if st.Compactions == 0 || st.FoldedRows == 0 {
		t.Fatalf("fold counters not bumped: compactions=%d folded=%d", st.Compactions, st.FoldedRows)
	}

	// Commits above the fold line: the view must still roll to any CSN in
	// (matTime, hwm], one commit at a time, with exact cardinality.
	var mids []CSN
	for i := 20; i < 30; i++ {
		csn, err := db.Update(func(tx *Tx) error {
			return tx.Insert("orders", Int(int64(i)), Str(crashItems[i%3].name))
		})
		if err != nil {
			t.Fatal(err)
		}
		mids = append(mids, csn)
	}
	view.WaitForHWM(mids[len(mids)-1])
	for i, mid := range mids {
		if err := view.RefreshTo(mid); err != nil {
			t.Fatalf("point-in-time refresh to %d after fold: %v", mid, err)
		}
		if got, want := view.Cardinality(), int64(21+i); got != want {
			t.Fatalf("view at csn %d has %d rows, want %d", mid, got, want)
		}
	}
	full, err := db.Query(orderPricesSpec())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := multiset(view.Rows()), multiset(full.Rows); !multisetsEqual(got, want) {
		t.Fatalf("view diverged from recomputation after fold:\n view: %v\n full: %v", got, want)
	}
}

// TestBackgroundFoldBoundsCardinality runs the low-priority fold job
// against a sustained insert stream and checks delta cardinality stays
// bounded instead of tracking total ingest.
func TestBackgroundFoldBoundsCardinality(t *testing.T) {
	db := newTestDB(t, Options{FoldDeltas: true})
	if _, err := db.Update(func(tx *Tx) error {
		for _, it := range crashItems {
			if err := tx.Insert("items", Str(it.name), Int(it.price)); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	view, err := db.DefineView(orderPricesSpec(), Maintain{Interval: 1, AutoRefresh: true})
	if err != nil {
		t.Fatal(err)
	}
	const n = 300
	var last CSN
	for i := 0; i < n; i++ {
		last, err = db.Update(func(tx *Tx) error {
			return tx.Insert("orders", Int(int64(i)), Str(crashItems[i%3].name))
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	view.WaitForHWM(last)
	if _, err := view.Refresh(); err != nil {
		t.Fatal(err)
	}
	// Give the background job a chance to fold behind the refreshed view.
	d, _ := db.Engine().Delta("orders")
	deadline := time.Now().Add(5 * time.Second)
	for d.Len() >= n {
		if time.Now().After(deadline) {
			t.Fatalf("background fold never reclaimed: orders delta at %d rows after %d inserts", d.Len(), n)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if st := db.Engine().Stats(); st.FoldedRows == 0 {
		t.Fatal("FoldedRows not accounted by background job")
	}
	// Correctness is untouched: view == recomputation.
	full, err := db.Query(orderPricesSpec())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := multiset(view.Rows()), multiset(full.Rows); !multisetsEqual(got, want) {
		t.Fatalf("view diverged under background folding:\n view: %v\n full: %v", got, want)
	}
}

// TestIncrementalCheckpointChainRoundTrip writes a FULL + DELTA chain
// across ingest batches, crashes cleanly, and restores through the chain
// plus the log suffix.
func TestIncrementalCheckpointChainRoundTrip(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "db.wal")
	chainDir := filepath.Join(dir, "chain")

	db, err := Open(Options{WALPath: walPath, SyncOnCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	crashCatalog(t, db)
	db.Update(func(tx *Tx) error {
		for _, it := range crashItems {
			tx.Insert("items", Str(it.name), Int(it.price))
		}
		return nil
	})
	if _, err := db.DefineView(orderPricesSpec(), Maintain{Interval: 4}); err != nil {
		t.Fatal(err)
	}
	ingest := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if _, err := db.Update(func(tx *Tx) error {
				return tx.Insert("orders", Int(int64(i)), Str(crashItems[i%3].name))
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	ingest(0, 8)
	if err := db.CheckpointIncremental(chainDir); err != nil {
		t.Fatal(err)
	}
	ingest(8, 16)
	if err := db.CheckpointIncremental(chainDir); err != nil {
		t.Fatal(err)
	}
	ingest(16, 24)
	if err := db.CheckpointIncremental(chainDir); err != nil {
		t.Fatal(err)
	}
	ingest(24, 30) // log-suffix-only writes
	db.Close()

	links, err := readChainDir(chainDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(links) != 3 {
		t.Fatalf("chain has %d links, want 3", len(links))
	}
	if links[0].Kind != wal.ChainFull {
		t.Fatal("first link must be FULL")
	}
	for i, l := range links[1:] {
		if l.Kind != wal.ChainDelta {
			t.Fatalf("link %d is not DELTA", i+2)
		}
	}

	db2, err := Open(Options{WALPath: walPath})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	crashCatalog(t, db2)
	restored, err := db2.RestoreChain(chainDir)
	if err != nil {
		t.Fatal(err)
	}
	if restored < CSN(links[2].To) {
		t.Fatalf("restored CSN %d precedes chain tail %d", restored, links[2].To)
	}
	view, err := db2.DefineView(orderPricesSpec(), Maintain{Interval: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := view.CatchUp(db2.LastCSN()); err != nil {
		t.Fatal(err)
	}
	if _, err := view.Refresh(); err != nil {
		t.Fatal(err)
	}
	if got := view.Cardinality(); got != 30 {
		t.Fatalf("view after chain restore: %d rows, want 30", got)
	}
	full, err := db2.Query(orderPricesSpec())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := multiset(view.Rows()), multiset(full.Rows); !multisetsEqual(got, want) {
		t.Fatalf("view diverged after chain restore:\n view: %v\n full: %v", got, want)
	}
	// The chain keeps extending from the restored state.
	if err := db2.CheckpointIncremental(chainDir); err != nil {
		t.Fatal(err)
	}
	if links, err = readChainDir(chainDir); err != nil || len(links) != 4 {
		t.Fatalf("post-restore chain: %d links (%v), want 4", len(links), err)
	}
}

// TestCheckpointPinKeepsChainIncremental checks the two halves of the
// shared-horizon contract: the checkpoint pin stops folding from pruning
// past the last link (so the next link can stay a DELTA), and without a
// pin an aggressive fold forces the chain to restart with a FULL link
// rather than emit an unreplayable window.
func TestCheckpointPinKeepsChainIncremental(t *testing.T) {
	dir := t.TempDir()
	chainDir := filepath.Join(dir, "chain")
	db, err := Open(Options{WALPath: filepath.Join(dir, "db.wal"), SyncOnCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	crashCatalog(t, db)
	db.Update(func(tx *Tx) error {
		for _, it := range crashItems {
			tx.Insert("items", Str(it.name), Int(it.price))
		}
		return nil
	})
	view, err := db.DefineView(orderPricesSpec(), Maintain{Interval: 1})
	if err != nil {
		t.Fatal(err)
	}
	var last CSN
	for i := 0; i < 10; i++ {
		last, _ = db.Update(func(tx *Tx) error {
			return tx.Insert("orders", Int(int64(i)), Str(crashItems[i%3].name))
		})
	}
	if err := db.CheckpointIncremental(chainDir); err != nil {
		t.Fatal(err)
	}
	pin := db.LastCSN()

	// Advance the view well past the pin, then fold hard. The ledger floor
	// must clamp pruning at the pin.
	for i := 10; i < 30; i++ {
		last, _ = db.Update(func(tx *Tx) error {
			return tx.Insert("orders", Int(int64(i)), Str(crashItems[i%3].name))
		})
	}
	view.WaitForHWM(last)
	if _, err := view.Refresh(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := db.Fold(); err != nil {
			t.Fatal(err)
		}
	}
	d, _ := db.Engine().Delta("orders")
	if pt := d.PrunedThrough(); pt > relalg.CSN(pin) {
		t.Fatalf("fold pruned orders delta through %d, past checkpoint pin %d", pt, pin)
	}
	// Because the window (pin, now] is intact, the next link is a DELTA.
	if err := db.CheckpointIncremental(chainDir); err != nil {
		t.Fatal(err)
	}
	links, err := readChainDir(chainDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(links) != 2 || links[1].Kind != wal.ChainDelta {
		t.Fatalf("want FULL+DELTA after pinned fold, got %d links (tail kind %d)", len(links), links[len(links)-1].Kind)
	}

	// Now break the contract on purpose: drop the pin and fold. Pruning
	// may cross the old link boundary, and the chain must self-heal by
	// restarting with a FULL link instead of writing a delta it cannot
	// replay from.
	db.Engine().Horizons().Unpin("checkpoint")
	for i := 30; i < 50; i++ {
		last, _ = db.Update(func(tx *Tx) error {
			return tx.Insert("orders", Int(int64(i)), Str(crashItems[i%3].name))
		})
	}
	view.WaitForHWM(last)
	if _, err := view.Refresh(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := db.Fold(); err != nil {
			t.Fatal(err)
		}
	}
	tail := links[1]
	d, _ = db.Engine().Delta("orders")
	if pt := d.PrunedThrough(); pt <= relalg.CSN(tail.To) {
		t.Skipf("fold did not cross the link boundary (pruned %d <= %d); contract not exercised", pt, tail.To)
	}
	if err := db.CheckpointIncremental(chainDir); err != nil {
		t.Fatal(err)
	}
	links, err = readChainDir(chainDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(links) != 1 || links[0].Kind != wal.ChainFull {
		t.Fatalf("chain should restart FULL after unpinned fold, got %d links", len(links))
	}
}

// TestFoldRespectsOpenSnapshot keeps an engine snapshot open across a
// fold: the ledger floor must hold pruning at the snapshot's CSN until
// it closes.
func TestFoldRespectsOpenSnapshot(t *testing.T) {
	db := newTestDB(t, Options{})
	db.Update(func(tx *Tx) error {
		for _, it := range crashItems {
			tx.Insert("items", Str(it.name), Int(it.price))
		}
		return nil
	})
	view, err := db.DefineView(orderPricesSpec(), Maintain{Interval: 1})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := db.Engine().OpenSnapshot(relalg.NullTS)
	if err != nil {
		t.Fatal(err)
	}
	asOf := snap.AsOf()
	var last CSN
	for i := 0; i < 20; i++ {
		last, _ = db.Update(func(tx *Tx) error {
			return tx.Insert("orders", Int(int64(i)), Str(crashItems[i%3].name))
		})
	}
	view.WaitForHWM(last)
	if _, err := view.Refresh(); err != nil {
		t.Fatal(err)
	}
	if err := db.Fold(); err != nil {
		t.Fatal(err)
	}
	d, _ := db.Engine().Delta("orders")
	if pt := d.PrunedThrough(); pt > asOf {
		t.Fatalf("fold pruned through %d past open snapshot at %d", pt, asOf)
	}
	snap.Close()
	if err := db.Fold(); err != nil {
		t.Fatal(err)
	}
	if pt := d.PrunedThrough(); pt <= asOf {
		t.Fatalf("fold still held at %d after snapshot close", pt)
	}
}
