// Package rollingjoin is an embedded Go library for asynchronous
// incremental maintenance of select-project-join materialized views, a
// from-scratch implementation of "How To Roll a Join: Asynchronous
// Incremental View Maintenance" (Salem, Beyer, Lindsay, Cochrane; SIGMOD
// 2000).
//
// The library bundles a small multiset relational engine (strict
// two-phase locking, write-ahead log), a log-capture process that fills
// timestamped delta tables, and the paper's rolling join propagation
// algorithm. Views are refreshed by two independent background concerns:
// a propagate process that turns base-table deltas into a timestamped view
// delta in small, tunable transactions, and an apply step that can roll the
// materialized view to any point up to the propagation high-water mark
// (point-in-time refresh).
//
// Quick start:
//
//	db, _ := rollingjoin.Open(rollingjoin.Options{})
//	defer db.Close()
//	db.CreateTable("orders", rollingjoin.Col("id", rollingjoin.TypeInt),
//	    rollingjoin.Col("item", rollingjoin.TypeString))
//	db.CreateTable("items", rollingjoin.Col("item", rollingjoin.TypeString),
//	    rollingjoin.Col("price", rollingjoin.TypeInt))
//	view, _ := db.DefineView(rollingjoin.ViewSpec{
//	    Name:   "order_prices",
//	    Tables: []string{"orders", "items"},
//	    Joins:  []rollingjoin.Join{{"orders", "item", "items", "item"}},
//	}, rollingjoin.Maintain{})
//	// ... run update transactions ...
//	view.Refresh() // roll the materialized view to the high-water mark
package rollingjoin

import (
	"repro/internal/relalg"
	"repro/internal/tuple"
)

// CSN is a commit sequence number — the library's internal time axis.
// CSNs are assigned in commit order and are consistent with the
// serialization order of transactions.
type CSN = relalg.CSN

// Value is a dynamically typed scalar (integer, float, string, bytes,
// boolean, or NULL).
type Value = tuple.Value

// Tuple is an ordered list of values.
type Tuple = tuple.Tuple

// Type identifies a column type.
type Type = tuple.Kind

// The available column types.
const (
	TypeInt    = tuple.KindInt
	TypeFloat  = tuple.KindFloat
	TypeString = tuple.KindString
	TypeBytes  = tuple.KindBytes
	TypeBool   = tuple.KindBool
)

// Int builds an integer value.
func Int(v int64) Value { return tuple.Int(v) }

// Float builds a floating-point value.
func Float(v float64) Value { return tuple.Float(v) }

// Str builds a string value.
func Str(v string) Value { return tuple.String_(v) }

// Bytes builds a byte-slice value.
func Bytes(v []byte) Value { return tuple.Bytes(v) }

// Bool builds a boolean value.
func Bool(v bool) Value { return tuple.Bool(v) }

// Null builds the NULL value.
func Null() Value { return tuple.Null() }

// Column describes one column of a table.
type Column struct {
	Name string
	Type Type
}

// Col is shorthand for constructing a Column.
func Col(name string, typ Type) Column { return Column{Name: name, Type: typ} }

// CmpOp is a comparison operator used in filters.
type CmpOp = relalg.CmpOp

// The comparison operators.
const (
	EQ = relalg.OpEQ
	NE = relalg.OpNE
	LT = relalg.OpLT
	LE = relalg.OpLE
	GT = relalg.OpGT
	GE = relalg.OpGE
)

// Join declares an equi-join between two table columns of a view.
type Join struct {
	LeftTable   string
	LeftColumn  string
	RightTable  string
	RightColumn string
}

// Filter restricts a view to rows where a column compares true against a
// constant. Multiple filters are conjunctive.
type Filter struct {
	Table  string
	Column string
	Op     CmpOp
	Value  Value
}

// OutCol selects one output column of a view. An empty list keeps every
// column of the join result.
type OutCol struct {
	Table  string
	Column string
}
