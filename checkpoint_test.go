package rollingjoin

import (
	"os"
	"path/filepath"
	"testing"
)

// TestCheckpointRestoreEndToEnd checkpoints a live database, continues
// writing, "crashes", and restores from snapshot + log suffix.
func TestCheckpointRestoreEndToEnd(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "db.wal")
	ckptPath := filepath.Join(dir, "snap.ckpt")

	catalog := func(db *DB) {
		if err := db.CreateTable("orders", Col("id", TypeInt), Col("item", TypeString)); err != nil {
			t.Fatal(err)
		}
		if err := db.CreateTable("items", Col("item", TypeString), Col("price", TypeInt)); err != nil {
			t.Fatal(err)
		}
	}

	db, err := Open(Options{WALPath: walPath, SyncOnCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	catalog(db)
	db.Update(func(tx *Tx) error {
		tx.Insert("items", Str("ball"), Int(5))
		tx.Insert("items", Str("bat"), Int(20))
		return nil
	})
	view, err := db.DefineView(orderPricesSpec(), Maintain{Interval: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		db.Update(func(tx *Tx) error { return tx.Insert("orders", Int(int64(i)), Str("ball")) })
	}
	if err := db.Checkpoint(ckptPath); err != nil {
		t.Fatal(err)
	}
	// Propagation restarted after the checkpoint: the view still works.
	last, _ := db.Update(func(tx *Tx) error { return tx.Insert("orders", Int(100), Str("bat")) })
	view.WaitForHWM(last)
	if _, err := view.Refresh(); err != nil {
		t.Fatal(err)
	}
	if view.Cardinality() != 9 {
		t.Fatalf("pre-crash view rows: %d", view.Cardinality())
	}
	// More post-checkpoint writes that only the log suffix holds.
	db.Update(func(tx *Tx) error { return tx.Insert("orders", Int(101), Str("ball")) })
	db.Close()

	// Restore: snapshot + suffix replay.
	db2, err := Open(Options{WALPath: walPath})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	catalog(db2)
	restored, err := db2.Restore(ckptPath)
	if err != nil {
		t.Fatal(err)
	}
	if restored == 0 {
		t.Fatal("restored csn")
	}
	var rows []Tuple
	db2.Update(func(tx *Tx) error {
		var err error
		rows, err = tx.Scan("orders")
		return err
	})
	if len(rows) != 10 { // 8 + 2 post-checkpoint
		t.Fatalf("orders after restore: %d", len(rows))
	}
	// Base deltas cover the whole history (snapshot + captured suffix), so
	// even a from-zero union view is correct after restore.
	view2, err := db2.DefineView(orderPricesSpec(), Maintain{Interval: 4})
	if err != nil {
		t.Fatal(err)
	}
	if view2.Cardinality() != 10 {
		t.Fatalf("view after restore: %d", view2.Cardinality())
	}
	final, _ := db2.Update(func(tx *Tx) error { return tx.Insert("orders", Int(102), Str("bat")) })
	view2.WaitForHWM(final)
	if _, err := view2.Refresh(); err != nil {
		t.Fatal(err)
	}
	if view2.Cardinality() != 11 {
		t.Fatalf("view after post-restore update: %d", view2.Cardinality())
	}
	// Base delta table holds snapshot rows plus the captured suffix.
	d, _ := db2.Engine().Delta("orders")
	if d.Len() != 11 {
		t.Fatalf("orders delta rows after restore: %d", d.Len())
	}
}

func TestRestoreErrors(t *testing.T) {
	dir := t.TempDir()
	db := newTestDB(t, Options{})
	if _, err := db.Restore(filepath.Join(dir, "missing.ckpt")); err == nil {
		t.Fatal("missing snapshot should fail")
	}
	// Corrupt snapshot.
	bad := filepath.Join(dir, "bad.ckpt")
	os.WriteFile(bad, []byte("garbage"), 0o644)
	if _, err := db.Restore(bad); err == nil {
		t.Fatal("corrupt snapshot should fail")
	}
	// After capture has started (view defined), restore is refused.
	db2 := newTestDB(t, Options{})
	if _, err := db2.DefineView(orderPricesSpec(), Maintain{Manual: true}); err != nil {
		t.Fatal(err)
	}
	ck := filepath.Join(dir, "ok.ckpt")
	if err := db2.Checkpoint(ck); err != nil {
		t.Fatal(err)
	}
	if _, err := db2.Restore(ck); err == nil {
		t.Fatal("restore after capture start should fail")
	}
	// Trigger mode: checkpoint/restore unsupported.
	db3 := newTestDB(t, Options{Capture: CaptureTrigger})
	if err := db3.Checkpoint(ck); err == nil {
		t.Fatal("trigger-mode checkpoint should fail")
	}
	if _, err := db3.Restore(ck); err == nil {
		t.Fatal("trigger-mode restore should fail")
	}
}

func TestCheckpointTamperDetected(t *testing.T) {
	dir := t.TempDir()
	db := newTestDB(t, Options{})
	db.Update(func(tx *Tx) error { return tx.Insert("items", Str("ball"), Int(5)) })
	ck := filepath.Join(dir, "snap.ckpt")
	if err := db.Checkpoint(ck); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(ck)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	os.WriteFile(ck, raw, 0o644)

	db2 := newTestDB(t, Options{})
	if _, err := db2.Restore(ck); err == nil {
		t.Fatal("tampered snapshot should fail the checksum")
	}
}
