package rollingjoin

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/capture"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/relalg"
	"repro/internal/sched"
	"repro/internal/tuple"
	"repro/internal/txn"
	"repro/internal/wal"
)

// CaptureMode selects how base-table changes reach the delta tables.
type CaptureMode uint8

// The capture modes.
const (
	// CaptureLog tails the write-ahead log asynchronously (the paper's
	// DPropR architecture; the default).
	CaptureLog CaptureMode = iota
	// CaptureTrigger appends delta rows synchronously inside each writer's
	// commit — lower capture latency, but every update transaction pays
	// the expanded footprint.
	CaptureTrigger
)

// Options configures a database instance.
type Options struct {
	// WALPath, when non-empty, backs the write-ahead log with a file;
	// otherwise the log lives in memory.
	WALPath string
	// Device, when non-nil, backs the log with the given device directly
	// and takes precedence over WALPath. Crash tests use this to interpose
	// a fault-injecting device.
	Device wal.Device
	// SyncOnCommit fsyncs the log inside every commit (file-backed only).
	SyncOnCommit bool
	// Capture selects the delta capture architecture.
	Capture CaptureMode
	// MaintenanceWorkers sizes the shared worker pool that runs every
	// view's propagation and application jobs. Default 4, minimum 1.
	MaintenanceWorkers int
	// Partitions hash-partitions every base table's version store and
	// delta window by join key into this many partitions; a co-partitioned
	// join's propagation step fans out into per-partition jobs on the
	// maintenance pool. 0 defers to the ROLLINGJOIN_PARTITIONS environment
	// variable, then 1 (the unpartitioned behavior).
	Partitions int
	// DisableHeavySplit turns off the heavy/light key classifier, keeping
	// every key on the generic hash path (the plain-hash A/B arm).
	DisableHeavySplit bool
	// BatchSize caps the rows per batch in the streaming executor — the
	// vectorization knob for scans, joins, and propagation queries. 0
	// defers to the ROLLINGJOIN_BATCH environment variable, then the
	// executor default (256).
	BatchSize int
	// FoldDeltas schedules the background delta-prefix fold job: a
	// low-priority maintenance job, woken by capture progress, that folds
	// view delta prefixes below the storage horizon into the derived
	// images, prunes unreachable base delta rows, collects dead row
	// versions, and trims the unit-of-work table — bounding memory under
	// sustained ingest. Point-in-time refresh above the fold line is
	// unaffected.
	FoldDeltas bool
	// SpillDir enables cold spill: derived images and join-cache
	// partitions untouched for SpillAfter serialize into a per-process
	// subdirectory of SpillDir and reload lazily on next access. Empty
	// disables spilling.
	SpillDir string
	// SpillAfter is the idleness window before a structure is considered
	// cold (default one minute).
	SpillAfter time.Duration
	// Follower opens the database as a read-only replication target. The
	// engine rejects client writes with ErrReadOnly, the local log is fed
	// exclusively by ShipFrames (raw WAL bytes tailed from a leader), and
	// a scheduler job replays shipped commits — base-table writes at the
	// leader's CSNs, then delta capture — so locally defined views maintain
	// themselves against the leader's commit sequence. Capture is forced to
	// the log architecture; do not call Recover on a follower (replay
	// rebuilds base state from the shipped log itself).
	Follower bool
}

// defaultMaintenanceWorkers sizes the shared pool when Options leaves it
// zero: enough for propagate and apply to overlap across a handful of
// views without commandeering the writers' cores.
const defaultMaintenanceWorkers = 4

// DB is an embedded database with incremental view maintenance. All view
// maintenance — propagation and application for every view — runs on one
// event-driven scheduler with a bounded worker pool, woken by capture
// progress notifications rather than polling.
type DB struct {
	eng     *engine.DB
	sched   *sched.Scheduler
	logCap  *capture.LogCapture
	trigCap *capture.TriggerCapture
	src     capture.Source

	// capMu/capClaimed guard the one-shot capture start. A plain once
	// cannot express Restore's needs: a failed restore must leave the
	// claim unconsumed so a later view definition can still start capture.
	capMu      sync.Mutex
	capClaimed bool

	// follower marks a read-only replication target; applyJob is its
	// scheduler-driven replay of the shipped leader log (see follower.go).
	follower bool
	applyJob *sched.Job

	// Storage-tiering maintenance (see tiering.go): the fold and spill
	// jobs on the scheduler's low-priority queue, plus the ticker driving
	// the spill sweep.
	fold       *sched.Job
	spill      *sched.Job
	spillDir   string
	spillAfter time.Duration
	spillStop  chan struct{}
	spillWg    sync.WaitGroup

	mu     sync.Mutex
	views  map[string]*View
	aggs   map[string]*AggregateView
	unions []*UnionView
	// downs maps a maintained relation to the names of maintained
	// relations defined over it (cascade edges). DropView walks it to
	// drop dependents before their upstream disappears.
	downs map[string]map[string]bool
}

// Open creates a database instance and starts its capture process.
func Open(opts Options) (*DB, error) {
	cfg := engine.Config{
		SyncOnCommit:      opts.SyncOnCommit,
		Partitions:        opts.Partitions,
		DisableHeavySplit: opts.DisableHeavySplit,
		BatchSize:         opts.BatchSize,
		Replica:           opts.Follower,
	}
	if opts.Device != nil {
		cfg.Device = opts.Device
	} else if opts.WALPath != "" {
		dev, err := wal.OpenFileDevice(opts.WALPath)
		if err != nil {
			return nil, err
		}
		cfg.Device = dev
	}
	eng, err := engine.Open(cfg)
	if err != nil {
		return nil, err
	}
	db := &DB{
		eng:   eng,
		views: make(map[string]*View),
		aggs:  make(map[string]*AggregateView),
		downs: make(map[string]map[string]bool),
	}
	workers := opts.MaintenanceWorkers
	if workers <= 0 {
		workers = defaultMaintenanceWorkers
	}
	db.sched = sched.New(workers)
	eng.SetSchedStats(func() engine.SchedStats {
		st := db.sched.Stats()
		return engine.SchedStats{
			Workers:     st.Workers,
			Jobs:        st.Jobs,
			JobsRunning: st.Running,
			Notifies:    st.Notifies,
			Wakeups:     st.Wakeups,
			Steps:       st.Steps,
			Parks:       st.Parks,
			Backoffs:    st.Backoffs,
			BacklogRows: st.Backlog,
		}
	})
	switch {
	case opts.Follower:
		// A follower's capture runs in replica mode (commits replayed from
		// the shipped log also apply their base writes) and is driven by a
		// scheduler job instead of a free-running goroutine: RunBounded
		// steps replay the log synchronously, so shutdown and backpressure
		// compose with the rest of maintenance. The capture-start claim is
		// consumed up front so a view definition never launches the
		// goroutine alongside the job.
		db.follower = true
		db.capClaimed = true
		db.logCap = capture.NewReplicaLogCapture(eng)
		db.src = db.logCap
		db.logCap.OnProgress(func(csn relalg.CSN) { db.sched.Notify(csn) })
		db.applyJob = db.sched.Register("repl:apply", db.followerApplyStep, sched.Options{
			Classify: classifyMaintenance,
		})
		db.applyJob.Start()
	case opts.Capture == CaptureTrigger:
		db.trigCap = capture.NewTriggerCapture(eng)
		db.src = db.trigCap
		db.trigCap.OnProgress(func(csn relalg.CSN) { db.sched.Notify(csn) })
	default:
		// The capture goroutine starts lazily (on the first view definition
		// or Source access) so that a reopened database can re-create its
		// catalog — and replay the log with Recover — before any log record
		// is consumed.
		db.logCap = capture.NewLogCapture(eng)
		db.src = db.logCap
		db.logCap.OnProgress(func(csn relalg.CSN) { db.sched.Notify(csn) })
	}
	if err := db.startTiering(opts); err != nil {
		db.sched.Close()
		eng.Close()
		return nil, err
	}
	return db, nil
}

// ensureCapture starts the log-capture goroutine exactly once (no-op in
// trigger mode).
func (db *DB) ensureCapture() {
	if db.claimCapture() && db.logCap != nil {
		db.logCap.Start()
	}
}

// claimCapture consumes the one-shot capture-start claim, reporting whether
// this caller won it. Restore claims it only after the snapshot loads, so a
// failed restore leaves lazy capture start intact.
func (db *DB) claimCapture() bool {
	db.capMu.Lock()
	defer db.capMu.Unlock()
	if db.capClaimed {
		return false
	}
	db.capClaimed = true
	return true
}

// Recover replays the write-ahead log into the base tables, restoring a
// previous process's committed state. Call it on a reopened file-backed
// database after re-creating every table (and index), before any new
// transactions or view definitions. It returns the highest recovered
// commit sequence number.
func (db *DB) Recover() (CSN, error) {
	return db.eng.Recover()
}

// Close stops view maintenance, the capture process, and the engine, in
// dependency order: the scheduler shuts down first (draining every
// in-flight propagation and apply step), then the log capture drains —
// replaying every committed frame still in the log against the live
// engine — and only then does the engine (and its log device) close.
// Draining capture before the engine closes is load-bearing: the capture
// goroutine replays WAL frames from the device, so closing the device
// first would have it racing shutdown with reads against a closed file.
func (db *DB) Close() error {
	db.stopTiering()
	db.sched.Close()
	if db.logCap != nil {
		db.logCap.Drain()
	}
	err := db.eng.Close()
	if db.trigCap != nil {
		db.trigCap.Stop()
	}
	return err
}

// Engine exposes the underlying engine for advanced use (benchmarks and
// experiments).
func (db *DB) Engine() *engine.DB { return db.eng }

// SetJoinCache toggles the resident join-state cache for propagation
// queries: eligible queries probe incrementally maintained hash indexes
// over the base tables instead of scanning the heaps under table locks.
func (db *DB) SetJoinCache(v bool) { db.eng.SetJoinCache(v) }

// Source exposes the capture progress watermark.
func (db *DB) Source() capture.Source {
	db.ensureCapture()
	return db.src
}

// UOW returns the unit-of-work table mapping CSNs to wall-clock commit
// times (nil in trigger mode before any commit).
func (db *DB) UOW() *capture.UnitOfWork {
	db.ensureCapture()
	if db.logCap != nil {
		return db.logCap.UOW()
	}
	return db.trigCap.UOW()
}

// LastCSN returns the most recent commit sequence number.
func (db *DB) LastCSN() CSN { return db.eng.LastCSN() }

// CreateTable registers a base table with a delta table, making it usable
// in view definitions.
func (db *DB) CreateTable(name string, cols ...Column) error {
	tcols := make([]tuple.Column, len(cols))
	for i, c := range cols {
		tcols[i] = tuple.Column{Name: c.Name, Kind: c.Type}
	}
	if _, err := db.eng.CreateTable(name, tuple.NewSchema(tcols...)); err != nil {
		return err
	}
	_, err := db.eng.CreateDelta(name)
	return err
}

// CreateIndex builds a hash index on a table column. Propagation queries
// whose delta side joins the indexed column use index nested-loop probes
// instead of full table scans. Create indexes right after CreateTable,
// before concurrent writers start.
func (db *DB) CreateIndex(table, column string) error {
	_, err := db.eng.CreateIndex(table, column)
	return err
}

// Tx is a read-write transaction.
type Tx struct {
	db    *DB
	inner *engine.Tx
}

// Begin starts a transaction.
func (db *DB) Begin() *Tx { return &Tx{db: db, inner: db.eng.Begin()} }

// Insert adds a row.
func (tx *Tx) Insert(table string, values ...Value) error {
	return tx.inner.Insert(table, Tuple(values))
}

// Delete removes up to limit rows where column op constant holds
// (limit <= 0 removes all matches). It returns the number removed.
func (tx *Tx) Delete(table, column string, op CmpOp, v Value, limit int) (int, error) {
	t, err := tx.db.eng.Table(table)
	if err != nil {
		return 0, err
	}
	c := t.Schema().Index(column)
	if c < 0 {
		return 0, fmt.Errorf("rollingjoin: no column %q in table %q", column, table)
	}
	return tx.inner.DeleteWhere(table, relalg.ColConst{Col: c, Op: op, Val: v}, limit)
}

// DeleteMatching removes up to limit rows satisfying every condition
// (limit <= 0 removes all matches). Conditions reference columns of the
// target table; the Filter.Table field is ignored.
func (tx *Tx) DeleteMatching(table string, conds []Filter, limit int) (int, error) {
	t, err := tx.db.eng.Table(table)
	if err != nil {
		return 0, err
	}
	var pred relalg.And
	for _, f := range conds {
		c := t.Schema().Index(f.Column)
		if c < 0 {
			return 0, fmt.Errorf("rollingjoin: no column %q in table %q", f.Column, table)
		}
		pred = append(pred, relalg.ColConst{Col: c, Op: f.Op, Val: f.Value})
	}
	return tx.inner.DeleteWhere(table, pred, limit)
}

// Scan returns the table's committed rows (taking a shared table lock held
// to commit).
func (tx *Tx) Scan(table string) ([]Tuple, error) {
	rel, err := tx.inner.Scan(table, nil)
	if err != nil {
		return nil, err
	}
	out := make([]Tuple, 0, rel.Len())
	for _, r := range rel.Rows {
		out = append(out, Tuple(r.Tuple))
	}
	return out, nil
}

// Commit commits the transaction and returns its commit sequence number.
func (tx *Tx) Commit() (CSN, error) { return tx.inner.Commit() }

// Abort rolls the transaction back.
func (tx *Tx) Abort() error { return tx.inner.Abort() }

// Update runs fn inside a transaction, committing on success and aborting
// on error or panic. It retries automatically when the transaction is
// chosen as a deadlock victim.
func (db *DB) Update(fn func(tx *Tx) error) (CSN, error) {
	for {
		tx := db.Begin()
		err := func() (err error) {
			defer func() {
				if r := recover(); r != nil {
					tx.Abort()
					panic(r)
				}
			}()
			return fn(tx)
		}()
		if err != nil {
			tx.Abort()
			if errors.Is(err, txn.ErrDeadlock) {
				continue
			}
			return 0, err
		}
		csn, err := tx.Commit()
		if err != nil {
			return 0, err
		}
		return csn, nil
	}
}

// ViewSpec declares a select-project-join view over base tables.
type ViewSpec struct {
	Name    string
	Tables  []string
	Joins   []Join
	Filters []Filter
	Output  []OutCol
}

// resolve lowers the named spec to the core ViewDef.
func (db *DB) resolve(spec ViewSpec) (*core.ViewDef, error) {
	return db.resolveChecked(spec, true)
}

func (db *DB) resolveChecked(spec ViewSpec, requireDeltas bool) (*core.ViewDef, error) {
	if spec.Name == "" {
		return nil, errors.New("rollingjoin: view needs a name")
	}
	idx := make(map[string]int, len(spec.Tables))
	for i, t := range spec.Tables {
		if _, dup := idx[t]; dup {
			return nil, fmt.Errorf("rollingjoin: table %q appears twice in view %q (self-joins are not supported)", t, spec.Name)
		}
		idx[t] = i
	}
	colRef := func(table, column string) (engine.ColRef, error) {
		i, ok := idx[table]
		if !ok {
			return engine.ColRef{}, fmt.Errorf("rollingjoin: view %q references table %q not in its FROM list", spec.Name, table)
		}
		// Relations may be base tables or other maintained views (the
		// cascade contract), so resolve through the unified catalog.
		s, err := core.RelationSchema(db.eng, table)
		if err != nil {
			return engine.ColRef{}, err
		}
		c := s.Index(column)
		if c < 0 {
			return engine.ColRef{}, fmt.Errorf("rollingjoin: no column %q in relation %q", column, table)
		}
		return engine.ColRef{Input: i, Col: c}, nil
	}

	def := &core.ViewDef{Name: spec.Name, Relations: spec.Tables}
	for _, j := range spec.Joins {
		a, err := colRef(j.LeftTable, j.LeftColumn)
		if err != nil {
			return nil, err
		}
		b, err := colRef(j.RightTable, j.RightColumn)
		if err != nil {
			return nil, err
		}
		def.Conds = append(def.Conds, engine.JoinCond{A: a, B: b})
	}
	if len(spec.Filters) > 0 {
		// Filters become a residual predicate over the concatenated schema.
		offsets := make([]int, len(spec.Tables))
		pos := 0
		for i, name := range spec.Tables {
			s, err := core.RelationSchema(db.eng, name)
			if err != nil {
				return nil, err
			}
			offsets[i] = pos
			pos += s.Arity()
		}
		var conj relalg.And
		for _, f := range spec.Filters {
			ref, err := colRef(f.Table, f.Column)
			if err != nil {
				return nil, err
			}
			conj = append(conj, relalg.ColConst{Col: offsets[ref.Input] + ref.Col, Op: f.Op, Val: f.Value})
		}
		def.Residual = conj
	}
	for _, o := range spec.Output {
		ref, err := colRef(o.Table, o.Column)
		if err != nil {
			return nil, err
		}
		def.Project = append(def.Project, ref)
	}
	if requireDeltas {
		return def, def.Validate(db.eng)
	}
	return def, def.ValidateQuery(db.eng)
}

// QueryResult holds an ad-hoc SELECT result: the output column names and
// the rows (a tuple with multiplicity m appears m times).
type QueryResult struct {
	Columns []string
	Rows    []Tuple
}

// Query evaluates a one-shot select-project-join query described by the
// spec. Unlike DefineView it requires no delta tables and materializes
// nothing; it simply runs the query transactionally against the current
// committed state.
func (db *DB) Query(spec ViewSpec) (*QueryResult, error) {
	if spec.Name == "" {
		spec.Name = "adhoc"
	}
	def, err := db.resolveChecked(spec, false)
	if err != nil {
		return nil, err
	}
	schema, err := def.Schema(db.eng)
	if err != nil {
		return nil, err
	}
	tx := db.eng.Begin()
	rel, err := tx.EvalQuery(core.AllBase(def).EngineQuery())
	if err != nil {
		tx.Abort()
		return nil, err
	}
	if _, err := tx.Commit(); err != nil {
		return nil, err
	}
	res := &QueryResult{Columns: schema.Names()}
	for _, row := range relalg.NetEffect(rel).Rows {
		for i := int64(0); i < row.Count; i++ {
			res.Rows = append(res.Rows, Tuple(row.Tuple))
		}
	}
	return res, nil
}

// ViewNames returns the defined views, sorted.
func (db *DB) ViewNames() []string {
	db.mu.Lock()
	defer db.mu.Unlock()
	names := make([]string, 0, len(db.views))
	for n := range db.views {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TableNames returns the registered base tables, sorted.
func (db *DB) TableNames() []string { return db.eng.TableNames() }

// Algorithm selects the propagation algorithm for a view.
type Algorithm uint8

// The propagation algorithms.
const (
	// AlgorithmRolling is rolling join propagation (Figure 10): one forward
	// query per step with per-relation intervals and deferred compensation.
	AlgorithmRolling Algorithm = iota
	// AlgorithmStepwise is the simpler Figure 5 process: one ComputeDelta
	// call per fixed interval.
	AlgorithmStepwise
)

// Maintain configures how a view is maintained.
type Maintain struct {
	// Algorithm defaults to AlgorithmRolling.
	Algorithm Algorithm
	// Interval is the propagation interval (in commits) used for every
	// relation without a per-relation override. Default 16.
	Interval CSN
	// Intervals optionally sets one interval per relation (rolling only).
	Intervals []CSN
	// Manual disables the background propagation goroutine; the caller
	// drives propagation with View.PropagateStep.
	Manual bool
	// KeepEmptyWindowQueries disables the empty-window elision
	// optimization, executing every propagation query the paper's
	// pseudocode issues.
	KeepEmptyWindowQueries bool
	// AdaptiveTargetRows, when positive, replaces the fixed intervals with
	// the adaptive policy: each relation's interval is sized so a forward
	// query covers roughly this many delta rows.
	AdaptiveTargetRows int
	// AutoRefresh also schedules the apply side: the materialized tuples
	// roll forward automatically as the high-water mark advances, instead
	// of waiting for Refresh calls.
	AutoRefresh bool
	// MaxBacklog, when positive, parks propagation while more than this
	// many un-applied view delta rows sit between the materialization time
	// and the high-water mark (backpressure: don't mint deltas faster than
	// anyone consumes them). Refresh, AutoRefresh, and CatchUp/WaitForHWM
	// demand all un-park it.
	MaxBacklog int
}

// DefineView materializes the view, wires up its delta table and
// propagation driver, and (unless Manual) starts propagation in the
// background.
//
// Relations may be base tables or other maintained views: a view's timed
// delta table registers under the view's own name, and together with its
// high-water mark it forms a derived relation downstream views read
// exactly like a base table. Cascades (fact → join view → rollup) are
// therefore planned, propagated, and refreshed through the same
// machinery at every level.
func (db *DB) DefineView(spec ViewSpec, opt Maintain) (*View, error) {
	db.ensureCapture()
	def, err := db.resolve(spec)
	if err != nil {
		return nil, err
	}
	schema, err := def.Schema(db.eng)
	if err != nil {
		return nil, err
	}

	// Maintained upstream relations make this a cascaded definition.
	ups, upNames := db.upstreamsOf(def.Relations)

	// The cascade contract: the view delta registers under the view's own
	// name, so delta positions of downstream propagation queries — and
	// db.Delta(viewName) — resolve without special cases.
	dest, err := db.eng.CreateStandaloneDelta(def.Name, schema)
	if err != nil {
		return nil, err
	}
	cleanup := func() {
		db.eng.UnregisterDerived(def.Name)
		db.eng.DropStandaloneDelta(def.Name)
	}

	// A cascaded view gates propagation on a composite source: progress is
	// min(base capture, upstream HWMs), and waiting drives lagging
	// upstreams forward first.
	src := db.src
	if len(ups) > 0 {
		vs := &capture.ViewSource{Base: db.src}
		for i, u := range ups {
			vs.Ups = append(vs.Ups, capture.Upstream{Name: upNames[i], HWM: u.hwm, CatchUp: u.CatchUpContext})
		}
		src = vs
	}

	// Initial materialization: pick one stable instant, bring every
	// upstream's high-water mark up to it (their deltas are then complete
	// there), and materialize all inputs at exactly that time.
	snap, err := db.eng.OpenSnapshot(relalg.NullTS)
	if err != nil {
		cleanup()
		return nil, err
	}
	asOf := snap.AsOf()
	snap.Close()
	for _, u := range ups {
		if err := u.CatchUp(asOf); err != nil {
			cleanup()
			return nil, err
		}
	}
	mv, err := core.MaterializeAt(db.eng, def, asOf)
	if err != nil {
		cleanup()
		return nil, err
	}
	exec := core.NewExecutor(db.eng, src, def, dest)
	exec.SkipEmptyWindows = !opt.KeepEmptyWindowQueries
	if db.eng.Partitions() > 1 {
		// Per-partition slice jobs of one propagation step fan out to the
		// shared maintenance pool, falling back inline when it is busy.
		exec.Spawn = db.sched.TrySpawn
	}

	interval := opt.Interval
	if interval <= 0 {
		interval = 16
	}
	var policy core.IntervalPolicy
	switch {
	case opt.AdaptiveTargetRows > 0:
		policy = core.AdaptiveInterval(db.eng, def, opt.AdaptiveTargetRows)
	case len(opt.Intervals) == def.N():
		policy = core.PerRelationIntervals(opt.Intervals...)
	default:
		policy = core.FixedInterval(interval)
	}

	v := &View{def: def, exec: exec, mv: mv, dest: dest}
	var step func() error
	var hwm func() CSN
	switch opt.Algorithm {
	case AlgorithmStepwise:
		p := core.NewPropagator(exec, mv.MatTime(), policy)
		step, hwm = p.Step, p.HWM
	default:
		rp := core.NewRollingPropagator(exec, mv.MatTime(), policy)
		step, hwm = rp.Step, rp.HWM
		v.rolling = rp
	}
	v.applier = core.NewApplier(mv, dest, hwm)
	v.maintained = maintained{db: db, hwm: hwm, src: src, ups: ups}

	// Register the view as a derived relation: its fixed image at asOf
	// plus the delta stream make it readable at any CSN up to the HWM.
	dv, err := db.eng.RegisterDerived(def.Name, schema, dest, hwm)
	if err != nil {
		cleanup()
		return nil, err
	}
	dv.SetImage(mv.AsRelation(), asOf)
	v.derived = dv
	v.prop = db.sched.Register("prop:"+def.Name, step, sched.Options{
		HWM:      hwm,
		Classify: classifyMaintenance,
		Backlog: func(limit int) int {
			return dest.PendingAfter(mv.MatTime(), limit)
		},
		MaxBacklog:   opt.MaxBacklog,
		OnProgress:   v.notifyDeps,
		WakeOnNotify: true,
	})
	if opt.AutoRefresh {
		v.apply = db.sched.Register("apply:"+def.Name, applyStep(v.applier), sched.Options{
			Classify:   classifyMaintenance,
			OnProgress: v.prop.Kick, // applying shrank the backlog
		})
	}

	db.mu.Lock()
	if _, dup := db.views[def.Name]; dup {
		db.mu.Unlock()
		v.unregisterJobs()
		cleanup()
		return nil, fmt.Errorf("rollingjoin: view %q already defined", def.Name)
	}
	db.views[def.Name] = v
	for _, un := range upNames {
		if db.downs[un] == nil {
			db.downs[un] = make(map[string]bool)
		}
		db.downs[un][def.Name] = true
	}
	db.mu.Unlock()

	// Chain the cascade on the scheduler: every upstream propagation
	// advance kicks this view's propagation job, so deltas flow level to
	// level without polling.
	for _, u := range ups {
		u.addDep(v.prop)
	}

	if !opt.Manual {
		v.StartPropagation()
	}
	return v, nil
}

// maintainedRel looks up a maintained relation (join view or incremental
// aggregate) by name.
func (db *DB) maintainedRel(name string) *maintained {
	db.mu.Lock()
	defer db.mu.Unlock()
	if v, ok := db.views[name]; ok {
		return &v.maintained
	}
	if a, ok := db.aggs[name]; ok {
		return &a.maintained
	}
	return nil
}

// upstreamsOf resolves the relation names that are maintained views.
func (db *DB) upstreamsOf(rels []string) (ups []*maintained, names []string) {
	for _, r := range rels {
		if m := db.maintainedRel(r); m != nil {
			ups = append(ups, m)
			names = append(names, r)
		}
	}
	return ups, names
}

// downstreamsOf returns the maintained relations currently defined over
// the named relation.
func (db *DB) downstreamsOf(name string) []*maintained {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := make([]*maintained, 0, len(db.downs[name]))
	for d := range db.downs[name] {
		if v, ok := db.views[d]; ok {
			out = append(out, &v.maintained)
		} else if a, ok := db.aggs[d]; ok {
			out = append(out, &a.maintained)
		}
	}
	return out
}

// View returns a previously defined view.
func (db *DB) View(name string) (*View, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	v, ok := db.views[name]
	return v, ok
}

// DropView stops a maintained relation's jobs, drops every maintained
// relation defined over it (downstream views, aggregates, summaries),
// detaches it from its upstream cascade chains, and releases its delta
// table and derived registration — so the name can be redefined. The
// name may refer to a join view or an incremental aggregate.
func (db *DB) DropView(name string) error {
	db.mu.Lock()
	v, okV := db.views[name]
	a, okA := db.aggs[name]
	if !okV && !okA {
		db.mu.Unlock()
		return fmt.Errorf("rollingjoin: no view %q", name)
	}
	// Claim the name first (concurrent definitions over it fail fast),
	// then snapshot the dependents to drop.
	delete(db.views, name)
	delete(db.aggs, name)
	downs := make([]string, 0, len(db.downs[name]))
	for d := range db.downs[name] {
		downs = append(downs, d)
	}
	delete(db.downs, name)
	db.mu.Unlock()
	sort.Strings(downs)

	// Dependents go first: their propagation reads this relation's delta
	// stream, which is about to be released.
	for _, d := range downs {
		_ = db.DropView(d) // a concurrently dropped dependent is fine
	}

	var m *maintained
	if okV {
		m = &v.maintained
	} else {
		m = &a.maintained
	}
	err := m.StopPropagation()
	m.unregisterJobs()
	for _, u := range m.ups {
		u.removeDep(m.prop)
	}
	db.mu.Lock()
	for _, dn := range db.downs {
		delete(dn, name)
	}
	db.mu.Unlock()
	db.eng.UnregisterDerived(name)
	db.eng.DropStandaloneDelta(name)
	return err
}

// ErrNoCommits is returned by wall-clock-to-CSN translation when the
// database has no commit at or before the requested instant — including a
// completely fresh database with no commits at all.
var ErrNoCommits = errors.New("rollingjoin: no commits at or before the requested time")

// CSNAt translates a wall-clock instant to the last CSN committed at or
// before it, using the unit-of-work table. It returns ErrNoCommits when no
// commit is that old (a fresh database, or an instant before the first
// commit); callers must not assume a CSN exists — the pre-fix signature
// invited exactly the nil-UOW / zero-CSN panic this guards against.
func (db *DB) CSNAt(t time.Time) (CSN, error) {
	uow := db.UOW()
	if uow == nil {
		return 0, ErrNoCommits
	}
	csn, ok := uow.CSNAtOrBefore(t)
	if !ok {
		return 0, ErrNoCommits
	}
	return csn, nil
}

// PruneBaseDeltas garbage-collects base-table delta rows that no view can
// ever read again: for each base table, rows at or below the minimum
// high-water mark of the views that reference it. It returns the number of
// rows reclaimed. Call it periodically on long-running databases.
func (db *DB) PruneBaseDeltas() int {
	return db.pruneBaseDeltasTo(maxFoldCSN, false)
}
