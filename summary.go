package rollingjoin

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sched"
)

// Summary is a maintained aggregation (GROUP BY + COUNT(*)/SUM) over a
// view, implemented with the summary-delta method: the view's timestamped
// delta doubles as the aggregate delta, so summaries support the same
// point-in-time refresh as the views they summarize. A summary can also be
// rolled forward automatically (StartAutoRefresh): its refresh job rides
// the same maintenance scheduler as the view, kicked whenever the view's
// propagation makes progress.
type Summary struct {
	inner *core.SummaryView
	job   *sched.Job
}

// SummaryRow is one group of a summary: the group key, COUNT(*), and one
// running SUM per requested column.
type SummaryRow struct {
	Key   Tuple
	Count int64
	Sums  []float64
}

// DefineSummary creates a summary over the view grouped by the named
// output columns, maintaining SUM for each column in sums. Column names
// refer to the view's output schema.
func (v *View) DefineSummary(name string, groupBy, sums []string) (*Summary, error) {
	resolve := func(names []string) ([]int, error) {
		out := make([]int, len(names))
		for i, n := range names {
			c := v.mv.Schema().Index(n)
			if c < 0 {
				return nil, fmt.Errorf("rollingjoin: view %q has no output column %q (have %v)",
					v.Name(), n, v.mv.Schema().Names())
			}
			out[i] = c
		}
		return out, nil
	}
	g, err := resolve(groupBy)
	if err != nil {
		return nil, err
	}
	s, err := resolve(sums)
	if err != nil {
		return nil, err
	}
	inner, err := core.NewSummaryView(name, v.dest, v.hwm, g, s)
	if err != nil {
		return nil, err
	}
	sum := &Summary{inner: inner}
	// Registered but not started: Refresh stays on-demand until the caller
	// opts into StartAutoRefresh. The view's propagation job kicks it on
	// every HWM advance.
	sum.job = v.db.sched.Register("summary:"+name, summaryStep(inner), sched.Options{
		Classify: classifyMaintenance,
	})
	v.addDep(sum.job)
	return sum, nil
}

// StartAutoRefresh schedules the summary's refresh as a maintenance job:
// the aggregates roll forward automatically whenever the underlying view's
// high-water mark advances. Idempotent.
func (s *Summary) StartAutoRefresh() { s.job.Start() }

// StopAutoRefresh suspends automatic refresh, draining any in-flight roll
// before returning. It returns the job's terminal error if refresh
// fail-stopped. Idempotent; StartAutoRefresh resumes.
func (s *Summary) StopAutoRefresh() error { return s.job.Stop() }

// Refresh rolls the summary to the view delta high-water mark.
func (s *Summary) Refresh() (CSN, error) { return s.inner.RollToHWM() }

// RefreshTo rolls the summary to an exact commit (point-in-time refresh).
func (s *Summary) RefreshTo(t CSN) error { return s.inner.RollTo(t) }

// MatTime returns the commit the aggregates currently reflect.
func (s *Summary) MatTime() CSN { return s.inner.MatTime() }

// Rows returns the groups sorted by key.
func (s *Summary) Rows() []SummaryRow {
	in := s.inner.Rows()
	out := make([]SummaryRow, len(in))
	for i, r := range in {
		out[i] = SummaryRow{Key: Tuple(r.Key), Count: r.Count, Sums: r.Sums}
	}
	return out
}

// Groups returns the number of groups.
func (s *Summary) Groups() int { return s.inner.Groups() }
