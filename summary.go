package rollingjoin

import "strconv"

// Summary is the deprecated aggregation surface, kept as a thin
// compatibility shim over the first-class incremental aggregate
// (DefineAggregate / AggregateView). A summary is now an AggregateView
// whose output columns are COUNT(*) followed by one SUM per requested
// column; it participates in cascades like any other maintained
// relation (its delta stream registers under its name, and further
// views may be defined over it).
//
// Deprecated: use DB.DefineAggregate, which also supports AVG, MIN, and
// MAX and can aggregate base tables directly.
type Summary struct {
	view *View
	av   *AggregateView
	n    int // number of SUM columns
}

// SummaryRow is one group of a summary: the group key, COUNT(*), and one
// running SUM per requested column.
type SummaryRow struct {
	Key   Tuple
	Count int64
	Sums  []float64
}

// DefineSummary creates a summary over the view grouped by the named
// output columns, maintaining SUM for each column in sums. Column names
// refer to the view's output schema.
//
// Deprecated: use DB.DefineAggregate with AggCount and AggSum columns.
func (v *View) DefineSummary(name string, groupBy, sums []string) (*Summary, error) {
	spec := AggSpec{
		Name:    name,
		Source:  v.Name(),
		GroupBy: groupBy,
		Aggs:    []Agg{{Func: AggCount}},
	}
	for i, c := range sums {
		spec.Aggs = append(spec.Aggs, Agg{Func: AggSum, Column: c, As: "sum" + strconv.Itoa(i)})
	}
	// AutoRefresh registers the apply job without starting it (the old
	// surface refreshed on demand until StartAutoRefresh); propagation
	// runs in the background so the summary's high-water mark tracks the
	// view's.
	av, err := v.db.DefineAggregate(spec, Maintain{AutoRefresh: true, Manual: true})
	if err != nil {
		return nil, err
	}
	av.prop.Start()
	return &Summary{view: v, av: av, n: len(sums)}, nil
}

// StartAutoRefresh schedules the summary's refresh as a maintenance job:
// the aggregates roll forward automatically whenever the underlying view's
// high-water mark advances. Idempotent.
func (s *Summary) StartAutoRefresh() { s.av.StartAutoRefresh() }

// StopAutoRefresh suspends automatic refresh, draining any in-flight roll
// before returning. It returns the job's terminal error if refresh
// fail-stopped. Idempotent; StartAutoRefresh resumes.
func (s *Summary) StopAutoRefresh() error { return s.av.StopAutoRefresh() }

// Refresh rolls the summary to the view delta high-water mark.
func (s *Summary) Refresh() (CSN, error) {
	target := s.view.hwm()
	if err := s.av.CatchUp(target); err != nil {
		return 0, err
	}
	return s.av.Refresh()
}

// RefreshTo rolls the summary to an exact commit (point-in-time refresh).
func (s *Summary) RefreshTo(t CSN) error {
	if err := s.av.CatchUp(t); err != nil {
		return err
	}
	return s.av.RefreshTo(t)
}

// MatTime returns the commit the aggregates currently reflect.
func (s *Summary) MatTime() CSN { return s.av.MatTime() }

// Rows returns the groups sorted by key.
func (s *Summary) Rows() []SummaryRow {
	rel := s.av.mv.AsRelation()
	nkey := len(s.av.def.GroupBy)
	out := make([]SummaryRow, 0, rel.Len())
	for _, r := range rel.Rows {
		row := SummaryRow{
			Key:   Tuple(r.Tuple[:nkey]),
			Count: r.Tuple[nkey].AsInt(),
			Sums:  make([]float64, s.n),
		}
		for i := 0; i < s.n; i++ {
			row.Sums[i] = r.Tuple[nkey+1+i].AsFloat()
		}
		out = append(out, row)
	}
	return out
}

// Groups returns the number of groups.
func (s *Summary) Groups() int { return s.av.Groups() }
