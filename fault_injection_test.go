package rollingjoin

import (
	"context"
	"errors"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/fault"
)

// TestTransientApplyErrorRetriesThroughBackoff: a few injected I/O errors
// on the apply path must ride the scheduler's backoff and converge without
// fail-stopping — the process survives transient EIO.
func TestTransientApplyErrorRetriesThroughBackoff(t *testing.T) {
	defer fault.Reset()
	db := newTestDB(t, Options{})
	db.Update(func(tx *Tx) error { return tx.Insert("items", Str("ball"), Int(5)) })
	view, err := db.DefineView(orderPricesSpec(), Maintain{Interval: 2, AutoRefresh: true})
	if err != nil {
		t.Fatal(err)
	}
	fault.Set(fault.PointApply, fault.ErrTimes(3, fault.ErrInjected))

	var last CSN
	for i := 0; i < 8; i++ {
		last, _ = db.Update(func(tx *Tx) error { return tx.Insert("orders", Int(int64(i)), Str("ball")) })
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := view.WaitForHWMContext(ctx, last); err != nil {
		t.Fatalf("propagation stalled: %v", err)
	}
	// The auto-refresh job must work through the injected failures.
	deadline := time.Now().Add(10 * time.Second)
	for view.MatTime() < view.HWM() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if view.MatTime() < view.HWM() {
		t.Fatalf("apply never converged: mat %d hwm %d (err %v)", view.MatTime(), view.HWM(), view.Err())
	}
	if err := view.Err(); err != nil {
		t.Fatalf("transient errors fail-stopped the job: %v", err)
	}
	if fault.Trips(fault.PointApply) < 3 {
		t.Fatalf("injected only %d times", fault.Trips(fault.PointApply))
	}
	if st := db.sched.Stats(); st.Backoffs < 1 {
		t.Fatalf("expected backoff retries, saw %d", st.Backoffs)
	}
	if view.Cardinality() != 8 {
		t.Fatalf("view rows %d after convergence", view.Cardinality())
	}
}

// TestPersistentApplyErrorFailStopsIntoViewStats: a hard failure exhausts
// the retry budget, fail-stops the job (not the process), surfaces the
// error in ViewStats, and a restart after the fault clears resumes cleanly.
func TestPersistentApplyErrorFailStopsIntoViewStats(t *testing.T) {
	defer fault.Reset()
	db := newTestDB(t, Options{})
	db.Update(func(tx *Tx) error { return tx.Insert("items", Str("ball"), Int(5)) })
	view, err := db.DefineView(orderPricesSpec(), Maintain{Interval: 2, AutoRefresh: true})
	if err != nil {
		t.Fatal(err)
	}
	fault.Set(fault.PointApply, fault.ErrAlways(fault.ErrInjected))

	var last CSN
	for i := 0; i < 4; i++ {
		last, _ = db.Update(func(tx *Tx) error { return tx.Insert("orders", Int(int64(i)), Str("ball")) })
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := view.WaitForHWMContext(ctx, last); err != nil {
		t.Fatalf("propagation (unfaulted) stalled: %v", err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for view.Err() == nil && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if err := view.Stats().MaintenanceErr; !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("ViewStats.MaintenanceErr = %v, want injected error", err)
	}
	// Other commits still work: the failure is contained to the one job.
	if _, err := db.Update(func(tx *Tx) error { return tx.Insert("orders", Int(99), Str("ball")) }); err != nil {
		t.Fatalf("database unusable after job fail-stop: %v", err)
	}

	// Clear the fault and restart maintenance: it resumes from the last
	// good position.
	fault.Reset()
	if err := view.StopPropagation(); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("StopPropagation should report the terminal error, got %v", err)
	}
	view.StartPropagation()
	if err := view.CatchUp(db.LastCSN()); err != nil {
		t.Fatal(err)
	}
	if _, err := view.Refresh(); err != nil {
		t.Fatal(err)
	}
	if err := view.Err(); err != nil {
		t.Fatalf("error survived restart: %v", err)
	}
	if view.Cardinality() != 5 {
		t.Fatalf("view rows %d after recovery", view.Cardinality())
	}
}

// TestRestoreRewiresPropagationWakeup: after Restore on a reopened
// database, a commit must wake propagation through the capture OnProgress →
// scheduler notification chain — the event-driven wait below would time out
// if the re-created capture were not re-wired.
func TestRestoreRewiresPropagationWakeup(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "db.wal")
	ckpt := filepath.Join(dir, "snap.ckpt")

	db, err := Open(Options{WALPath: walPath, SyncOnCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	crashCatalog(t, db)
	db.Update(func(tx *Tx) error { return tx.Insert("items", Str("ball"), Int(5)) })
	if _, err := db.DefineView(orderPricesSpec(), Maintain{Interval: 2}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		db.Update(func(tx *Tx) error { return tx.Insert("orders", Int(int64(i)), Str("ball")) })
	}
	if err := db.Checkpoint(ckpt); err != nil {
		t.Fatal(err)
	}
	db.Close()

	db2, err := Open(Options{WALPath: walPath, SyncOnCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	crashCatalog(t, db2)
	if _, err := db2.Restore(ckpt); err != nil {
		t.Fatal(err)
	}
	view, err := db2.DefineView(orderPricesSpec(), Maintain{Interval: 2})
	if err != nil {
		t.Fatal(err)
	}
	// The post-restore commit must propagate without any polling fallback:
	// WaitForHWMContext parks until a scheduler notification arrives.
	var last CSN
	for i := 0; i < 4; i++ {
		last, _ = db2.Update(func(tx *Tx) error { return tx.Insert("orders", Int(int64(10+i)), Str("ball")) })
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := view.WaitForHWMContext(ctx, last); err != nil {
		t.Fatalf("post-restore commit did not wake propagation: %v", err)
	}
	if _, err := view.Refresh(); err != nil {
		t.Fatal(err)
	}
	if view.Cardinality() != 8 {
		t.Fatalf("view rows %d after restore + post-restore commits", view.Cardinality())
	}
	// Join-cache invalidation happened in the restore path: enabling the
	// cache after restore must still produce correct propagation results.
	full, err := db2.Query(orderPricesSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !multisetsEqual(multiset(view.Rows()), multiset(full.Rows)) {
		t.Fatal("view diverged from full recomputation after restore")
	}
}

// TestFailedRestoreLeavesCaptureUsable: a Restore that fails (missing
// snapshot) must not consume the lazy capture start — views defined
// afterwards still get a working capture process. This regressed silently
// before: the old code claimed the start before opening the snapshot file.
func TestFailedRestoreLeavesCaptureUsable(t *testing.T) {
	db := newTestDB(t, Options{})
	if _, err := db.Restore(filepath.Join(t.TempDir(), "missing.ckpt")); err == nil {
		t.Fatal("missing snapshot should fail")
	}
	db.Update(func(tx *Tx) error { return tx.Insert("items", Str("ball"), Int(5)) })
	view, err := db.DefineView(orderPricesSpec(), Maintain{Interval: 2})
	if err != nil {
		t.Fatal(err)
	}
	last, _ := db.Update(func(tx *Tx) error { return tx.Insert("orders", Int(1), Str("ball")) })
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := view.WaitForHWMContext(ctx, last); err != nil {
		t.Fatalf("capture dead after failed restore: %v", err)
	}
	if _, err := view.Refresh(); err != nil {
		t.Fatal(err)
	}
	if view.Cardinality() != 1 {
		t.Fatalf("view rows %d", view.Cardinality())
	}
}
