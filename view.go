package rollingjoin

import (
	"errors"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/relalg"
)

// Re-exported apply-side errors.
var (
	// ErrBeyondHWM is returned when a refresh target lies past the view
	// delta high-water mark.
	ErrBeyondHWM = core.ErrBeyondHWM
	// ErrBackward is returned when a refresh target precedes the view's
	// materialized state.
	ErrBackward = core.ErrBackward
)

// View is a materialized select-project-join view under asynchronous
// incremental maintenance. Propagation (computing the timestamped view
// delta) and application (rolling the materialized tuples forward) are
// fully decoupled: propagation usually runs in a background goroutine,
// while Refresh / RefreshTo apply accumulated changes on demand.
type View struct {
	db   *DB
	def  *core.ViewDef
	exec *core.Executor
	mv   *core.MaterializedView
	dest *engine.DeltaTable

	applier *core.Applier
	stepper func() error
	hwm     func() CSN
	runner  func(stop <-chan struct{}) error
	rolling *core.RollingPropagator // nil for AlgorithmStepwise

	mu      sync.Mutex
	stop    chan struct{}
	done    chan error
	running bool
}

// Name returns the view name.
func (v *View) Name() string { return v.def.Name }

// HWM returns the view delta high-water mark: the latest CSN the view can
// currently be rolled to.
func (v *View) HWM() CSN { return v.hwm() }

// MatTime returns the CSN whose database state the materialized tuples
// currently reflect.
func (v *View) MatTime() CSN { return v.mv.MatTime() }

// Rows returns the materialized tuples in net-effect form; a tuple with
// multiplicity m appears m times.
func (v *View) Rows() []Tuple {
	rel := v.mv.AsRelation()
	out := make([]Tuple, 0, rel.Len())
	for _, r := range rel.Rows {
		for i := int64(0); i < r.Count; i++ {
			out = append(out, Tuple(r.Tuple))
		}
	}
	return out
}

// Cardinality returns the number of tuples (with multiplicity).
func (v *View) Cardinality() int64 { return v.mv.Cardinality() }

// Relation exposes the materialized contents for experiments.
func (v *View) Relation() *relalg.Relation { return v.mv.AsRelation() }

// Refresh rolls the materialized view to the current high-water mark and
// returns the CSN reached.
func (v *View) Refresh() (CSN, error) { return v.applier.RollToHWM() }

// RefreshTo performs point-in-time refresh: it rolls the view to exactly
// the given CSN, which must lie between the current materialization time
// and the high-water mark.
func (v *View) RefreshTo(t CSN) error { return v.applier.RollTo(t) }

// RefreshToTime rolls the view to the last transaction committed at or
// before the given wall-clock instant ("refresh the view to its 5:00 pm
// state").
func (v *View) RefreshToTime(t time.Time) (CSN, error) {
	csn, ok := v.db.CSNAt(t)
	if !ok {
		return 0, errors.New("rollingjoin: no commits at or before the requested time")
	}
	if csn < v.MatTime() {
		// The view is already past that instant.
		return 0, core.ErrBackward
	}
	return csn, v.applier.RollTo(csn)
}

// WaitForHWM blocks until the high-water mark reaches target. Propagation
// must be running (or driven concurrently via PropagateStep).
func (v *View) WaitForHWM(target CSN) {
	for v.hwm() < target {
		time.Sleep(100 * time.Microsecond)
	}
}

// PropagateStep runs one propagation step synchronously (Manual mode). It
// returns core.ErrNoProgress when capture has nothing new.
func (v *View) PropagateStep() error { return v.stepper() }

// CatchUp advances propagation until the high-water mark reaches target.
// With a background propagator running it simply waits; otherwise it drives
// propagation steps synchronously. Refresh(CatchUp(db.LastCSN())) is
// "refresh the view to now".
func (v *View) CatchUp(target CSN) error {
	for v.hwm() < target {
		v.mu.Lock()
		running := v.running
		v.mu.Unlock()
		if running {
			time.Sleep(100 * time.Microsecond)
			continue
		}
		if err := v.stepper(); err != nil {
			if errors.Is(err, core.ErrNoProgress) {
				time.Sleep(100 * time.Microsecond) // capture catching up
				continue
			}
			return err
		}
	}
	return nil
}

// StartPropagation launches the background propagation goroutine; it is a
// no-op if already running.
func (v *View) StartPropagation() {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.running {
		return
	}
	v.stop = make(chan struct{})
	v.done = make(chan error, 1)
	v.running = true
	go func() { v.done <- v.runner(v.stop) }()
}

// StopPropagation suspends the propagation process (it can be restarted —
// the paper's "either process can be suspended during periods of high
// system load"). It returns the propagation loop's terminal error, if any.
func (v *View) StopPropagation() error {
	v.mu.Lock()
	if !v.running {
		v.mu.Unlock()
		return nil
	}
	close(v.stop)
	v.running = false
	done := v.done
	v.mu.Unlock()
	return <-done
}

// PruneApplied discards view delta rows that can no longer be needed
// (timestamps at or below the materialization time).
func (v *View) PruneApplied() int { return v.applier.PruneApplied() }

// Stats reports maintenance activity for the view.
type ViewStats struct {
	ForwardQueries      int64
	CompensationQueries int64
	SkippedEmptyWindows int64
	DeltaRowsProduced   int64
	DeltaRowsPending    int
	RowsApplied         int64
	Refreshes           int64
	HWM                 CSN
	MatTime             CSN
}

// Stats returns a snapshot of the view's maintenance counters.
func (v *View) Stats() ViewStats {
	es := v.exec.Stats()
	return ViewStats{
		ForwardQueries:      es.ForwardQueries,
		CompensationQueries: es.CompensationQueries,
		SkippedEmptyWindows: es.SkippedEmpty,
		DeltaRowsProduced:   es.RowsProduced,
		DeltaRowsPending:    v.dest.Len(),
		RowsApplied:         v.applier.RowsApplied(),
		Refreshes:           v.applier.Refreshes(),
		HWM:                 v.hwm(),
		MatTime:             v.mv.MatTime(),
	}
}

// TFwd exposes the per-relation forward progress (rolling algorithm only;
// nil otherwise). Used by the demo tool to visualize Figure 9.
func (v *View) TFwd() []CSN {
	if v.rolling == nil {
		return nil
	}
	return v.rolling.TFwd()
}
