package rollingjoin

import (
	"errors"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/relalg"
	"repro/internal/tuple"
)

// Re-exported apply-side errors.
var (
	// ErrBeyondHWM is returned when a refresh target lies past the view
	// delta high-water mark.
	ErrBeyondHWM = core.ErrBeyondHWM
	// ErrBackward is returned when a refresh target precedes the view's
	// materialized state.
	ErrBackward = core.ErrBackward
	// ErrNoProgress is returned by PropagateStep when capture has nothing
	// new: the high-water mark already sits at the last minted boundary.
	ErrNoProgress = core.ErrNoProgress
)

// View is a materialized select-project-join view under asynchronous
// incremental maintenance. Propagation (computing the timestamped view
// delta) and application (rolling the materialized tuples forward) are
// fully decoupled: both run as jobs on the database's maintenance
// scheduler — propagation woken by capture notifications, application
// either on demand (Refresh / RefreshTo) or scheduled (Maintain.AutoRefresh).
// The View itself is a thin handle over those jobs.
type View struct {
	maintained

	def  *core.ViewDef
	exec *core.Executor
	mv   *core.MaterializedView
	dest *engine.DeltaTable

	// derived is the view's registration as a readable relation (image +
	// delta stream); downstream views scan it like a base table.
	derived *engine.Derived

	applier *core.Applier
	rolling *core.RollingPropagator // nil for AlgorithmStepwise
}

// Name returns the view name.
func (v *View) Name() string { return v.def.Name }

// HWM returns the view delta high-water mark: the latest CSN the view can
// currently be rolled to.
func (v *View) HWM() CSN { return v.hwm() }

// MatTime returns the CSN whose database state the materialized tuples
// currently reflect.
func (v *View) MatTime() CSN { return v.mv.MatTime() }

// Rows returns the materialized tuples in net-effect form; a tuple with
// multiplicity m appears m times.
func (v *View) Rows() []Tuple {
	rel := v.mv.AsRelation()
	out := make([]Tuple, 0, rel.Len())
	for _, r := range rel.Rows {
		for i := int64(0); i < r.Count; i++ {
			out = append(out, Tuple(r.Tuple))
		}
	}
	return out
}

// Cardinality returns the number of tuples (with multiplicity).
func (v *View) Cardinality() int64 { return v.mv.Cardinality() }

// MaterializeAt computes the view's contents as of an arbitrary CSN at or
// below the high-water mark — the derived image plus the delta window up
// to asOf — without moving the materialized tuples (no Refresh). It
// returns ErrBeyondHWM when asOf exceeds the HWM. This is the server's
// point-in-time read: any number of clients can materialize at different
// instants concurrently with ongoing maintenance.
func (v *View) MaterializeAt(asOf CSN) ([]Tuple, error) {
	if v.derived == nil {
		return nil, errors.New("rollingjoin: view has no derived registration")
	}
	rel, err := v.derived.ScanAsOf(asOf, nil)
	if err != nil {
		return nil, err
	}
	net := relalg.NetEffect(rel)
	out := make([]Tuple, 0, net.Len())
	for _, r := range net.Rows {
		for i := int64(0); i < r.Count; i++ {
			out = append(out, Tuple(r.Tuple))
		}
	}
	return out, nil
}

// EachDelta streams the view's timed delta rows with CSN in (lo, hi] in
// timestamp order: fn receives each delta's commit CSN, signed
// multiplicity, and decoded row. The view-delta subscription endpoint
// drives it window by window as the high-water mark advances — the view's
// change stream, exactly as minted by propagation. fn must not retain the
// row slice and must not call back into the view's delta table.
func (v *View) EachDelta(lo, hi CSN, fn func(ts CSN, count int64, row Tuple) error) error {
	return v.dest.WindowEach(lo, hi, func(ts relalg.CSN, count int64, encRow []byte) error {
		row, _, err := tuple.DecodeRow(encRow)
		if err != nil {
			return err
		}
		return fn(ts, count, Tuple(row))
	})
}

// Relation exposes the materialized contents for experiments.
func (v *View) Relation() *relalg.Relation { return v.mv.AsRelation() }

// Refresh rolls the materialized view to the current high-water mark and
// returns the CSN reached.
func (v *View) Refresh() (CSN, error) {
	t, err := v.applier.RollToHWM()
	v.prop.Kick() // applying shrinks the backlog; un-park propagation
	return t, err
}

// RefreshTo performs point-in-time refresh: it rolls the view to exactly
// the given CSN, which must lie between the current materialization time
// and the high-water mark.
func (v *View) RefreshTo(t CSN) error {
	err := v.applier.RollTo(t)
	v.prop.Kick()
	return err
}

// RefreshToTime rolls the view to the last transaction committed at or
// before the given wall-clock instant ("refresh the view to its 5:00 pm
// state").
func (v *View) RefreshToTime(t time.Time) (CSN, error) {
	csn, err := v.db.CSNAt(t)
	if err != nil {
		return 0, err
	}
	if csn < v.MatTime() {
		// The view is already past that instant.
		return 0, core.ErrBackward
	}
	return csn, v.RefreshTo(csn)
}

// PruneApplied discards view delta rows that can no longer be needed.
// The safe floor is the materialization time, further lowered to the
// smallest high-water mark of any maintained view defined over this one:
// a downstream view reads this view's delta both as its propagation
// input (windows above its HWM) and through the derived image (state at
// or below it), so the image is compacted to the floor before rows at or
// below it are discarded.
func (v *View) PruneApplied() int {
	return v.foldTo(maxFoldCSN)
}

// foldTo is PruneApplied with an extra ceiling: the fold job passes the
// storage horizon ledger's floor so open snapshots and external pins keep
// point-in-time refresh intact below the usual MatTime/downstream floor.
func (v *View) foldTo(limit CSN) int {
	floor := limit
	if t := v.mv.MatTime(); t < floor {
		floor = t
	}
	for _, m := range v.db.downstreamsOf(v.def.Name) {
		if h := m.hwm(); h < floor {
			floor = h
		}
	}
	if v.derived != nil {
		if err := v.derived.CompactThrough(floor); err != nil {
			return 0
		}
	}
	return v.dest.PruneThrough(floor)
}

// Stats reports maintenance activity for the view.
type ViewStats struct {
	ForwardQueries      int64
	CompensationQueries int64
	SkippedEmptyWindows int64
	DeltaRowsProduced   int64
	DeltaRowsPending    int
	// DeltaRowsUnapplied counts view delta rows between the materialization
	// time and the high-water mark: the apply backlog driving the
	// scheduler's backpressure signal.
	DeltaRowsUnapplied int
	RowsApplied        int64
	Refreshes          int64
	HWM                CSN
	MatTime            CSN
	// MaintenanceErr is non-nil once a maintenance job has fail-stopped:
	// its step kept returning an error through the scheduler's full
	// retry/backoff budget. Start/StartPropagation clears it.
	MaintenanceErr error
}

// Stats returns a snapshot of the view's maintenance counters.
func (v *View) Stats() ViewStats {
	es := v.exec.Stats()
	return ViewStats{
		ForwardQueries:      es.ForwardQueries,
		CompensationQueries: es.CompensationQueries,
		SkippedEmptyWindows: es.SkippedEmpty,
		DeltaRowsProduced:   es.RowsProduced,
		DeltaRowsPending:    v.dest.Len(),
		DeltaRowsUnapplied:  v.dest.PendingAfter(v.mv.MatTime(), 0),
		RowsApplied:         v.applier.RowsApplied(),
		Refreshes:           v.applier.Refreshes(),
		HWM:                 v.hwm(),
		MatTime:             v.mv.MatTime(),
		MaintenanceErr:      v.Err(),
	}
}

// TFwd exposes the per-relation forward progress (rolling algorithm only;
// nil otherwise). Used by the demo tool to visualize Figure 9.
func (v *View) TFwd() []CSN {
	if v.rolling == nil {
		return nil
	}
	return v.rolling.TFwd()
}
