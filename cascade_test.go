package rollingjoin

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// cascadeFixture builds the canonical 3-level cascade: orders ⋈ regions
// (orders_enriched), a per-region rollup over it (hourly), and a view
// over the rollup (big_regions with a residual filter).
type cascadeFixture struct {
	db       *DB
	enriched *View
	hourly   *AggregateView
}

func newCascadeFixture(t *testing.T, opt Maintain) *cascadeFixture {
	t.Helper()
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	mustCreate := func(name string, cols ...Column) {
		t.Helper()
		if err := db.CreateTable(name, cols...); err != nil {
			t.Fatal(err)
		}
	}
	mustCreate("orders",
		Column{Name: "oid", Type: TypeInt},
		Column{Name: "cust", Type: TypeInt},
		Column{Name: "amt", Type: TypeFloat},
	)
	mustCreate("regions",
		Column{Name: "cust", Type: TypeInt},
		Column{Name: "region", Type: TypeString},
	)
	enriched, err := db.DefineView(ViewSpec{
		Name:   "orders_enriched",
		Tables: []string{"orders", "regions"},
		Joins:  []Join{{LeftTable: "orders", LeftColumn: "cust", RightTable: "regions", RightColumn: "cust"}},
	}, opt)
	if err != nil {
		t.Fatal(err)
	}
	hourly, err := db.DefineAggregate(AggSpec{
		Name:    "hourly",
		Source:  "orders_enriched",
		GroupBy: []string{"region"},
		Aggs: []Agg{
			{Func: AggCount},
			{Func: AggSum, Column: "amt"},
			{Func: AggAvg, Column: "amt"},
			{Func: AggMin, Column: "amt"},
			{Func: AggMax, Column: "amt"},
		},
	}, opt)
	if err != nil {
		t.Fatal(err)
	}
	return &cascadeFixture{db: db, enriched: enriched, hourly: hourly}
}

// recomputeHourly computes the rollup from scratch against the current
// committed base state via ad-hoc query, as the oracle.
func (f *cascadeFixture) recomputeHourly(t *testing.T) map[string][4]float64 {
	t.Helper()
	res, err := f.db.Query(ViewSpec{
		Name:   "oracle",
		Tables: []string{"orders", "regions"},
		Joins:  []Join{{LeftTable: "orders", LeftColumn: "cust", RightTable: "regions", RightColumn: "cust"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	type acc struct {
		n        int64
		sum      float64
		min, max float64
	}
	groups := make(map[string]*acc)
	for _, row := range res.Rows {
		region := row[4].AsString()
		amt := row[2].AsFloat()
		a := groups[region]
		if a == nil {
			a = &acc{min: amt, max: amt}
			groups[region] = a
		} else {
			if amt < a.min {
				a.min = amt
			}
			if amt > a.max {
				a.max = amt
			}
		}
		a.n++
		a.sum += amt
	}
	out := make(map[string][4]float64, len(groups))
	for r, a := range groups {
		out[r] = [4]float64{float64(a.n), a.sum, a.min, a.max}
	}
	return out
}

// checkHourly compares the maintained rollup to the oracle.
func (f *cascadeFixture) checkHourly(t *testing.T, oracle map[string][4]float64) {
	t.Helper()
	rows := f.hourly.Rows()
	if len(rows) != len(oracle) {
		t.Fatalf("hourly has %d groups, oracle %d", len(rows), len(oracle))
	}
	for _, r := range rows {
		region := r[0].AsString()
		want, ok := oracle[region]
		if !ok {
			t.Fatalf("unexpected group %q", region)
		}
		n, sum, avg := r[1].AsInt(), r[2].AsFloat(), r[3].AsFloat()
		min, max := r[4].AsFloat(), r[5].AsFloat()
		if float64(n) != want[0] || !feq(sum, want[1]) || !feq(min, want[2]) || !feq(max, want[3]) {
			t.Fatalf("group %q = (n=%d sum=%v min=%v max=%v), want (n=%v sum=%v min=%v max=%v)",
				region, n, sum, min, max, want[0], want[1], want[2], want[3])
		}
		if wantAvg := want[1] / want[0]; !feq(avg, wantAvg) {
			t.Fatalf("group %q avg = %v, want %v", region, avg, wantAvg)
		}
	}
}

func feq(a, b float64) bool {
	d := a - b
	return d < 1e-6 && d > -1e-6
}

// TestCascadeBasic drives the fact → join view → rollup cascade through
// inserts and deletes and checks every level against recomputation.
func TestCascadeBasic(t *testing.T) {
	f := newCascadeFixture(t, Maintain{Interval: 4})
	db := f.db

	regions := []string{"east", "west", "north"}
	for c := 0; c < 6; c++ {
		c := c
		if _, err := db.Update(func(tx *Tx) error {
			return tx.Insert("regions", Int(int64(c)), Str(regions[c%len(regions)]))
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 40; i++ {
		i := i
		if _, err := db.Update(func(tx *Tx) error {
			return tx.Insert("orders", Int(int64(i)), Int(int64(i%6)), Float(float64(10+i)))
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Delete a few orders, including current per-group maxima, to
	// exercise MIN/MAX retraction handling through the cascade.
	if _, err := db.Update(func(tx *Tx) error {
		for _, oid := range []int64{39, 38, 0, 7} {
			if _, err := tx.Delete("orders", "oid", EQ, Int(oid), 0); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	last := db.LastCSN()
	if err := f.hourly.CatchUp(last); err != nil {
		t.Fatal(err)
	}
	if _, err := f.enriched.Refresh(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.hourly.Refresh(); err != nil {
		t.Fatal(err)
	}
	f.checkHourly(t, f.recomputeHourly(t))

	// The join view itself must match a recomputation too.
	res, err := db.Query(ViewSpec{
		Name:   "oracle_join",
		Tables: []string{"orders", "regions"},
		Joins:  []Join{{LeftTable: "orders", LeftColumn: "cust", RightTable: "regions", RightColumn: "cust"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := int64(len(res.Rows)), f.enriched.Cardinality(); got != want {
		t.Fatalf("enriched has %d rows, oracle %d", want, got)
	}
}

// TestCascadeThirdLevel defines a plain view over the aggregate (level
// 3) and checks it tracks the rollup.
func TestCascadeThirdLevel(t *testing.T) {
	f := newCascadeFixture(t, Maintain{Interval: 4})
	db := f.db

	big, err := db.DefineView(ViewSpec{
		Name:    "big_regions",
		Tables:  []string{"hourly"},
		Filters: []Filter{{Table: "hourly", Column: "sum_amt", Op: GE, Value: Float(100)}},
	}, Maintain{Interval: 4})
	if err != nil {
		t.Fatal(err)
	}

	for c := 0; c < 4; c++ {
		c := c
		if _, err := db.Update(func(tx *Tx) error {
			return tx.Insert("regions", Int(int64(c)), Str(fmt.Sprintf("r%d", c%2)))
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 30; i++ {
		i := i
		if _, err := db.Update(func(tx *Tx) error {
			return tx.Insert("orders", Int(int64(i)), Int(int64(i%4)), Float(float64(i)))
		}); err != nil {
			t.Fatal(err)
		}
	}

	last := db.LastCSN()
	if err := big.CatchUp(last); err != nil {
		t.Fatal(err)
	}
	if err := big.RefreshTo(last); err != nil {
		t.Fatal(err)
	}
	if _, err := f.hourly.Refresh(); err != nil {
		t.Fatal(err)
	}

	// Oracle: groups of hourly with sum_amt >= 100 at the same instant.
	want := 0
	for _, r := range f.hourly.Rows() {
		if r[2].AsFloat() >= 100 {
			want++
		}
	}
	if got := int(big.Cardinality()); got != want {
		t.Fatalf("big_regions has %d rows, want %d", got, want)
	}
}

// TestCascadePointInTime checks per-level point-in-time refresh: each
// level rolled to the same mid-stream CSN agrees with a recomputation of
// that prefix.
func TestCascadePointInTime(t *testing.T) {
	f := newCascadeFixture(t, Maintain{Interval: 2})
	db := f.db

	if _, err := db.Update(func(tx *Tx) error {
		for c := 0; c < 3; c++ {
			if err := tx.Insert("regions", Int(int64(c)), Str(fmt.Sprintf("r%d", c))); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	var mid CSN
	for i := 0; i < 20; i++ {
		csn, err := db.Update(func(tx *Tx) error {
			return tx.Insert("orders", Int(int64(i)), Int(int64(i%3)), Float(float64(i)))
		})
		if err != nil {
			t.Fatal(err)
		}
		if i == 9 {
			mid = csn
		}
	}

	// Expected rollup for the first 10 orders (ids 0..9, amt == id).
	exp := map[string][4]float64{}
	for i := 0; i < 10; i++ {
		r := fmt.Sprintf("r%d", i%3)
		a, ok := exp[r]
		if !ok {
			a = [4]float64{0, 0, float64(i), float64(i)}
		}
		a[0]++
		a[1] += float64(i)
		if float64(i) < a[2] {
			a[2] = float64(i)
		}
		if float64(i) > a[3] {
			a[3] = float64(i)
		}
		exp[r] = a
	}

	if err := f.hourly.CatchUp(mid); err != nil {
		t.Fatal(err)
	}
	if err := f.enriched.RefreshTo(mid); err != nil {
		t.Fatal(err)
	}
	if err := f.hourly.RefreshTo(mid); err != nil {
		t.Fatal(err)
	}
	f.checkHourly(t, exp)

	// Roll everything to the end and check against the live oracle.
	last := db.LastCSN()
	if err := f.hourly.CatchUp(last); err != nil {
		t.Fatal(err)
	}
	if _, err := f.enriched.Refresh(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.hourly.Refresh(); err != nil {
		t.Fatal(err)
	}
	f.checkHourly(t, f.recomputeHourly(t))
}

// TestCascadeConcurrentWriters runs writers against the cascade while
// maintenance is live, then settles and compares every level with
// recomputation (run with -race).
func TestCascadeConcurrentWriters(t *testing.T) {
	f := newCascadeFixture(t, Maintain{Interval: 4, AutoRefresh: true})
	db := f.db

	if _, err := db.Update(func(tx *Tx) error {
		for c := 0; c < 8; c++ {
			if err := tx.Insert("regions", Int(int64(c)), Str(fmt.Sprintf("r%d", c%4))); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	const writers = 4
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 50; i++ {
				oid := int64(w*1000 + i)
				if _, err := db.Update(func(tx *Tx) error {
					return tx.Insert("orders", Int(oid), Int(int64(rng.Intn(8))), Float(float64(rng.Intn(500))))
				}); err != nil {
					t.Error(err)
					return
				}
				if i%7 == 3 {
					if _, err := db.Update(func(tx *Tx) error {
						_, err := tx.Delete("orders", "oid", EQ, Int(int64(w*1000+rng.Intn(i+1))), 0)
						return err
					}); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()

	last := db.LastCSN()
	if err := f.hourly.CatchUp(last); err != nil {
		t.Fatal(err)
	}
	if _, err := f.enriched.Refresh(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.hourly.Refresh(); err != nil {
		t.Fatal(err)
	}
	f.checkHourly(t, f.recomputeHourly(t))
}

// TestAggregateOverBaseTable aggregates a base table directly (no view
// in between).
func TestAggregateOverBaseTable(t *testing.T) {
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.CreateTable("m",
		Column{Name: "k", Type: TypeInt},
		Column{Name: "v", Type: TypeFloat},
	); err != nil {
		t.Fatal(err)
	}
	agg, err := db.DefineAggregate(AggSpec{
		Name:    "m_by_k",
		Source:  "m",
		GroupBy: []string{"k"},
		Aggs:    []Agg{{Func: AggCount}, {Func: AggMax, Column: "v"}},
	}, Maintain{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		i := i
		if _, err := db.Update(func(tx *Tx) error {
			return tx.Insert("m", Int(int64(i%4)), Float(float64(i)))
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Remove the global maximum: group 3 loses v=19, must fall back to 15.
	if _, err := db.Update(func(tx *Tx) error {
		_, err := tx.Delete("m", "v", EQ, Float(19), 0)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := agg.CatchUp(db.LastCSN()); err != nil {
		t.Fatal(err)
	}
	if _, err := agg.Refresh(); err != nil {
		t.Fatal(err)
	}
	rows := agg.Rows()
	if len(rows) != 4 {
		t.Fatalf("got %d groups, want 4", len(rows))
	}
	for _, r := range rows {
		k, n, max := r[0].AsInt(), r[1].AsInt(), r[2].AsFloat()
		wantN, wantMax := int64(5), float64(16+k)
		if k == 3 {
			wantN, wantMax = 4, 15
		}
		if n != wantN || max != wantMax {
			t.Fatalf("group %d = (n=%d max=%v), want (n=%d max=%v)", k, n, max, wantN, wantMax)
		}
	}
}

// TestCascadeDefineDropChurn churns whole cascades — join view, rollup
// over it, filtered view over the rollup — across goroutines while
// writers commit, repeatedly dropping the bottom view (which must cascade
// to its dependents) and redefining the same names. It verifies that
// dropping deregisters the dependent maintenance jobs and frees the
// names for reuse, and that the final surviving cascade is still correct.
// Run with -race.
func TestCascadeDefineDropChurn(t *testing.T) {
	f := newCascadeFixture(t, Maintain{})
	for i := 0; i < 10; i++ {
		i := i
		if _, err := f.db.Update(func(tx *Tx) error {
			if err := tx.Insert("regions", Int(int64(i)), Str(fmt.Sprintf("r%d", i%3))); err != nil {
				return err
			}
			return tx.Insert("orders", Int(int64(i)), Int(int64(i)), Float(float64(10*i)))
		}); err != nil {
			t.Fatal(err)
		}
	}

	// A throttled concurrent writer: enough traffic that defines and drops
	// overlap live propagation, but bounded so each redefined cascade's
	// catch-up stays short.
	stop := make(chan struct{})
	var writers sync.WaitGroup
	writers.Add(1)
	go func() {
		defer writers.Done()
		for n := 100; ; n++ {
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
			}
			n := n
			if _, err := f.db.Update(func(tx *Tx) error {
				return tx.Insert("orders", Int(int64(n)), Int(int64(n%10)), Float(1))
			}); err != nil {
				return
			}
		}
	}()

	const goroutines, rounds = 8, 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			vname := fmt.Sprintf("churn_v%d", g)
			aname := fmt.Sprintf("churn_a%d", g)
			tname := fmt.Sprintf("churn_t%d", g)
			for r := 0; r < rounds; r++ {
				if _, err := f.db.DefineView(ViewSpec{
					Name:   vname,
					Tables: []string{"orders", "regions"},
					Joins:  []Join{{LeftTable: "orders", LeftColumn: "cust", RightTable: "regions", RightColumn: "cust"}},
				}, Maintain{}); err != nil {
					errs <- fmt.Errorf("round %d: define %s: %w", r, vname, err)
					return
				}
				if _, err := f.db.DefineAggregate(AggSpec{
					Name:    aname,
					Source:  vname,
					GroupBy: []string{"region"},
					Aggs:    []Agg{{Func: AggCount}, {Func: AggSum, Column: "amt"}},
				}, Maintain{}); err != nil {
					errs <- fmt.Errorf("round %d: define %s: %w", r, aname, err)
					return
				}
				if _, err := f.db.DefineView(ViewSpec{
					Name:    tname,
					Tables:  []string{aname},
					Filters: []Filter{{Table: aname, Column: "sum_amt", Op: GE, Value: Float(0)}},
				}, Maintain{}); err != nil {
					errs <- fmt.Errorf("round %d: define %s: %w", r, tname, err)
					return
				}
				// Dropping the bottom view must take the whole cascade with it.
				if err := f.db.DropView(vname); err != nil {
					errs <- fmt.Errorf("round %d: drop %s: %w", r, vname, err)
					return
				}
				if _, ok := f.db.Aggregate(aname); ok {
					errs <- fmt.Errorf("round %d: %s survived its upstream drop", r, aname)
					return
				}
				if _, ok := f.db.View(tname); ok {
					errs <- fmt.Errorf("round %d: %s survived its upstream drop", r, tname)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	writers.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// The long-lived cascade from the fixture survived the churn intact.
	if err := f.hourly.CatchUp(f.db.LastCSN()); err != nil {
		t.Fatal(err)
	}
	if _, err := f.hourly.Refresh(); err != nil {
		t.Fatal(err)
	}
	f.checkHourly(t, f.recomputeHourly(t))
}
