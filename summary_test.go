package rollingjoin

import (
	"testing"
)

func TestSummaryOverView(t *testing.T) {
	db := newTestDB(t, Options{})
	db.Update(func(tx *Tx) error {
		tx.Insert("items", Str("ball"), Int(5))
		tx.Insert("items", Str("bat"), Int(20))
		return nil
	})
	view, err := db.DefineView(orderPricesSpec(), Maintain{Interval: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Group order_prices by item, summing price: (orders ⨝ items).
	sum, err := view.DefineSummary("revenue", []string{"item"}, []string{"price"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := view.DefineSummary("bad", []string{"ghost"}, nil); err == nil {
		t.Fatal("unknown column should fail")
	}

	var last CSN
	for i := 0; i < 6; i++ {
		item := "ball"
		if i >= 4 {
			item = "bat" // 4 balls, 2 bats
		}
		last, _ = db.Update(func(tx *Tx) error {
			return tx.Insert("orders", Int(int64(i)), Str(item))
		})
	}
	view.WaitForHWM(last)
	if _, err := sum.Refresh(); err != nil {
		t.Fatal(err)
	}
	rows := sum.Rows()
	if len(rows) != 2 || sum.Groups() != 2 {
		t.Fatalf("groups: %+v", rows)
	}
	// Sorted by key: ball before bat? "ball" < "bat" lexicographically.
	if rows[0].Key[0].AsString() != "ball" || rows[0].Count != 4 || rows[0].Sums[0] != 20 {
		t.Fatalf("ball group: %+v", rows[0])
	}
	if rows[1].Key[0].AsString() != "bat" || rows[1].Count != 2 || rows[1].Sums[0] != 40 {
		t.Fatalf("bat group: %+v", rows[1])
	}

	// Delete two ball orders; summary follows.
	last, _ = db.Update(func(tx *Tx) error {
		_, err := tx.Delete("orders", "id", LE, Int(1), 0)
		return err
	})
	view.WaitForHWM(last)
	if _, err := sum.Refresh(); err != nil {
		t.Fatal(err)
	}
	rows = sum.Rows()
	if rows[0].Count != 2 || rows[0].Sums[0] != 10 {
		t.Fatalf("ball group after deletes: %+v", rows[0])
	}
	if sum.MatTime() < last {
		t.Fatal("mat time")
	}
}

func TestSummaryPointInTime(t *testing.T) {
	db := newTestDB(t, Options{})
	db.Update(func(tx *Tx) error { return tx.Insert("items", Str("ball"), Int(5)) })
	view, err := db.DefineView(orderPricesSpec(), Maintain{Interval: 4})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := view.DefineSummary("s", []string{"item"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	mid, _ := db.Update(func(tx *Tx) error { return tx.Insert("orders", Int(1), Str("ball")) })
	last, _ := db.Update(func(tx *Tx) error { return tx.Insert("orders", Int(2), Str("ball")) })
	view.WaitForHWM(last)
	if err := sum.RefreshTo(mid); err != nil {
		t.Fatal(err)
	}
	if rows := sum.Rows(); len(rows) != 1 || rows[0].Count != 1 {
		t.Fatalf("at mid: %+v", rows)
	}
	if err := sum.RefreshTo(last); err != nil {
		t.Fatal(err)
	}
	if rows := sum.Rows(); rows[0].Count != 2 {
		t.Fatalf("at last: %+v", rows)
	}
}
