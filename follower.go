package rollingjoin

import (
	"repro/internal/core"
	"repro/internal/engine"
)

// ErrReadOnly is returned by write paths on a follower database: base-table
// state on a replica is owned by the leader's shipped log, so inserts and
// deletes must be sent to the leader.
var ErrReadOnly = engine.ErrReadOnly

// IsFollower reports whether the database was opened as a read-only
// replication target (Options.Follower).
func (db *DB) IsFollower() bool { return db.follower }

// followerApplyStep is the follower's scheduler job: replay a bounded
// slice of the shipped leader log — base-table writes at the leader's
// CSNs, then the delta-table appends — so one large shipment cannot
// monopolize a maintenance worker. It reports ErrNoProgress (→ Idle) when
// the replay has caught up with the shipped frontier; ShipFrames kicks the
// job whenever new complete frames land.
func (db *DB) followerApplyStep() error {
	n, err := db.logCap.RunBounded(512)
	if err != nil {
		return err
	}
	if n == 0 {
		return core.ErrNoProgress
	}
	return nil
}

// ShipFrames ingests raw WAL bytes shipped from the leader. Complete
// frames become readable immediately and wake the replay job; a trailing
// partial frame is retained until the next shipment completes it. It
// returns the committed log size after the shipment — the follower's
// replication offset. A *wal.CorruptError means the shipped bytes were
// damaged; the tailer must stop rather than replay past the damage.
func (db *DB) ShipFrames(p []byte) (int64, error) {
	n, err := db.eng.Log().AppendShipped(p)
	if db.applyJob != nil {
		db.applyJob.Kick()
	}
	return n, err
}

// ShippedOffset returns the byte offset the next shipment should start
// from: the raw device length, including any retained partial frame — so
// a tailer reconnecting mid-frame does not re-request bytes it already
// holds.
func (db *DB) ShippedOffset() int64 {
	return db.eng.Log().DeviceSize()
}

// AppliedCSN returns the highest leader commit this follower has fully
// replayed into its base tables (0 before any; always 0 on a leader).
func (db *DB) AppliedCSN() CSN {
	return db.eng.AppliedCSN()
}
