package rollingjoin

import (
	"errors"
	"fmt"
	"os"

	"repro/internal/capture"
	"repro/internal/relalg"
)

// Checkpoint writes a snapshot of the committed database state (base
// tables, base delta tables, and the commit counter) to path. A database
// restored from the snapshot replays only the log suffix written after it,
// instead of the whole log.
//
// The snapshot is taken quiescently: every view's propagation is suspended,
// capture is allowed to catch up, and the snapshot is written while the
// caller refrains from committing writes. View propagation restarts before
// Checkpoint returns. Concurrent writers during the snapshot itself are
// the caller's responsibility to avoid.
func (db *DB) Checkpoint(path string) error {
	if db.logCap == nil {
		return errors.New("rollingjoin: checkpointing requires log capture mode")
	}
	db.ensureCapture()

	// Suspend propagation for a consistent delta snapshot.
	db.mu.Lock()
	views := make([]*View, 0, len(db.views))
	for _, v := range db.views {
		views = append(views, v)
	}
	db.mu.Unlock()
	var suspended []*View
	for _, v := range views {
		if v.Maintaining() {
			if err := v.StopPropagation(); err != nil {
				return err
			}
			suspended = append(suspended, v)
		}
	}
	defer func() {
		for _, v := range suspended {
			v.StartPropagation()
		}
	}()

	// Base deltas must reflect every commit the snapshot will include.
	last := db.eng.LastCSN()
	if err := db.logCap.WaitProgress(last); err != nil {
		return err
	}
	offset := db.eng.Log().Size()

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := db.eng.WriteSnapshot(f, offset); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Restore loads a snapshot written by Checkpoint into a freshly opened
// database whose catalog (tables, indexes) has been re-created, then
// replays the log suffix past the snapshot offset and points the capture
// process there. Call it instead of Recover when a snapshot exists:
//
//	db, _ := rollingjoin.Open(rollingjoin.Options{WALPath: wal})
//	createCatalog(db)
//	db.Restore("snap.ckpt")
//	// define views, resume work
//
// Wall-clock lookup (RefreshToTime, CSNAt) only covers commits captured
// after the restore; point-in-time refresh by CSN is unaffected.
func (db *DB) Restore(path string) (CSN, error) {
	if db.logCap == nil {
		return 0, errors.New("rollingjoin: restore requires log capture mode")
	}
	if db.logCap.Started() {
		return 0, errors.New("rollingjoin: restore must run before any view definition or Source access")
	}
	// Claim the once so ensureCapture never starts the stale reader; the
	// replacement capture below is started explicitly.
	db.captureOnce.Do(func() {})

	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	offset, err := db.eng.ReadSnapshot(f)
	if err != nil {
		return 0, fmt.Errorf("rollingjoin: restore: %w", err)
	}
	// Redo the log suffix into the base tables.
	if _, err := db.eng.RecoverFrom(offset); err != nil {
		return 0, err
	}
	// Point capture past the snapshot, re-wire its progress notifications
	// to the maintenance scheduler, and start it.
	db.logCap = capture.NewLogCaptureAt(db.eng, offset, db.eng.LastCSN())
	db.src = db.logCap
	db.logCap.OnProgress(func(csn relalg.CSN) { db.sched.Notify(csn) })
	db.logCap.Start()
	return db.eng.LastCSN(), nil
}
