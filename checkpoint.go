package rollingjoin

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/capture"
	"repro/internal/fault"
	"repro/internal/relalg"
	"repro/internal/wal"
)

// Checkpoint writes a snapshot of the committed database state (base
// tables, base delta tables, and the commit counter) to path. A database
// restored from the snapshot replays only the log suffix written after it,
// instead of the whole log.
//
// The snapshot is taken quiescently: every view's propagation is suspended,
// capture is allowed to catch up, and the snapshot is written while the
// caller refrains from committing writes. View propagation restarts before
// Checkpoint returns. Concurrent writers during the snapshot itself are
// the caller's responsibility to avoid.
func (db *DB) Checkpoint(path string) error {
	if db.logCap == nil {
		return errors.New("rollingjoin: checkpointing requires log capture mode")
	}
	db.ensureCapture()

	resume, _, offset, err := db.quiesce()
	if err != nil {
		return err
	}
	defer resume()

	// Publish atomically: write and sync a temp file in the target
	// directory, rename it over the destination, then fsync the directory
	// so the rename itself is durable. A crash at any point leaves either
	// the old checkpoint or the new one — never a torn file at path.
	if err := fault.Inject(fault.PointCheckpointWrite); err != nil {
		return err
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := db.eng.WriteSnapshot(f, offset); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := fault.Inject(fault.PointCheckpointRename); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so a preceding rename inside it survives a
// crash. Filesystems that refuse to sync directories are tolerated.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, os.ErrInvalid) {
		return err
	}
	return nil
}

// Restore loads a snapshot written by Checkpoint into a freshly opened
// database whose catalog (tables, indexes) has been re-created, then
// replays the log suffix past the snapshot offset and points the capture
// process there. Call it instead of Recover when a snapshot exists:
//
//	db, _ := rollingjoin.Open(rollingjoin.Options{WALPath: wal})
//	createCatalog(db)
//	db.Restore("snap.ckpt")
//	// define views, resume work
//
// Wall-clock lookup (RefreshToTime, CSNAt) only covers commits captured
// after the restore; point-in-time refresh by CSN is unaffected.
func (db *DB) Restore(path string) (CSN, error) {
	if db.logCap == nil {
		return 0, errors.New("rollingjoin: restore requires log capture mode")
	}
	if db.logCap.Started() {
		return 0, errors.New("rollingjoin: restore must run before any view definition or Source access")
	}
	if err := fault.Inject(fault.PointRestore); err != nil {
		return 0, err
	}
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	offset, err := db.eng.ReadSnapshot(f)
	if err != nil {
		return 0, fmt.Errorf("rollingjoin: restore: %w", err)
	}
	// Redo the log suffix into the base tables.
	if _, err := db.eng.RecoverFrom(offset); err != nil {
		return 0, err
	}
	// Claim the capture start only now that the snapshot is loaded: a
	// failed Restore must leave the lazy start usable (the caller may fall
	// back to Recover plus normal capture). The stale reader positioned at
	// offset 0 is replaced with one pointed past the snapshot, its progress
	// notifications re-wired to the maintenance scheduler, and started.
	db.claimCapture()
	db.logCap = capture.NewLogCaptureAt(db.eng, offset, db.eng.LastCSN())
	db.src = db.logCap
	db.logCap.OnProgress(func(csn relalg.CSN) { db.sched.Notify(csn) })
	db.logCap.Start()
	return db.eng.LastCSN(), nil
}

// quiesce suspends every maintained view's propagation and the background
// fold job, waits for capture to reflect every commit, and returns the
// commit horizon and log offset the checkpoint will cover, plus a resume
// function restarting what was suspended. The fold job must not run
// concurrently with a checkpoint write: a fold could prune delta rows out
// of the window an incremental link is serializing.
func (db *DB) quiesce() (resume func(), last CSN, offset int64, err error) {
	db.mu.Lock()
	views := make([]*View, 0, len(db.views))
	for _, v := range db.views {
		views = append(views, v)
	}
	db.mu.Unlock()
	var suspended []*View
	resume = func() {
		for _, v := range suspended {
			v.StartPropagation()
		}
	}
	for _, v := range views {
		if v.Maintaining() {
			if serr := v.StopPropagation(); serr != nil {
				resume()
				return nil, 0, 0, serr
			}
			suspended = append(suspended, v)
		}
	}
	if db.fold != nil && db.fold.Running() {
		if serr := db.fold.Stop(); serr != nil {
			resume()
			return nil, 0, 0, serr
		}
		inner := resume
		resume = func() {
			db.fold.Start()
			inner()
		}
	}

	// Base deltas must reflect every commit the snapshot will include.
	last = db.eng.LastCSN()
	if werr := db.logCap.WaitProgress(last); werr != nil {
		resume()
		return nil, 0, 0, werr
	}
	return resume, last, db.eng.Log().Size(), nil
}

// chainLinkName is the file name of chain link seq within a chain
// directory. Six digits keep lexical order equal to sequence order.
func chainLinkName(seq uint64) string { return fmt.Sprintf("%06d.link", seq) }

// readChainDir loads and validates the checkpoint chain stored as one
// frame per %06d.link file in dir. A missing directory is an empty chain;
// any corrupt, truncated, or discontinuous link fails with wal.ErrBadChain.
func readChainDir(dir string) ([]*wal.ChainLink, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".link") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	links := make([]*wal.ChainLink, 0, len(names))
	for _, n := range names {
		data, err := os.ReadFile(filepath.Join(dir, n))
		if err != nil {
			return nil, err
		}
		l, used, err := wal.DecodeLink(data)
		if err != nil {
			return nil, err
		}
		if used != len(data) {
			return nil, fmt.Errorf("%w: trailing bytes after link %s", wal.ErrBadChain, n)
		}
		links = append(links, l)
	}
	if err := wal.ValidateChain(links); err != nil {
		return nil, err
	}
	return links, nil
}

// CheckpointIncremental appends one link to the checkpoint chain stored in
// dir, creating the chain (a FULL link: a complete snapshot) if the
// directory is empty. Subsequent calls write DELTA links carrying only the
// delta window committed since the previous link, so steady-state
// checkpoint cost is proportional to the change since the last checkpoint
// rather than the database size.
//
// Each link publishes atomically (temp file, fsync, rename, directory
// fsync), so a crash mid-checkpoint leaves the previous chain intact. The
// chain self-heals: if the delta window a DELTA link needs has been folded
// away (a fold pass ran past the chain tail before the tail was pinned —
// e.g. the chain predates this process), the call falls back to starting a
// fresh chain with a FULL link. After a successful link the chain tail is
// pinned in the storage horizon ledger so folding never outruns the next
// link's window.
func (db *DB) CheckpointIncremental(dir string) error {
	if db.logCap == nil {
		return errors.New("rollingjoin: checkpointing requires log capture mode")
	}
	db.ensureCapture()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}

	resume, last, offset, err := db.quiesce()
	if err != nil {
		return err
	}
	defer resume()

	links, err := readChainDir(dir)
	if err != nil && !errors.Is(err, wal.ErrBadChain) {
		return err
	}
	// A corrupt chain (err != nil) restarts with a FULL link, same as an
	// empty directory.
	kind := uint8(wal.ChainFull)
	var from CSN
	seq := uint64(1)
	if err == nil && len(links) > 0 {
		tail := links[len(links)-1]
		from = CSN(tail.To)
		seq = tail.Seq + 1
		kind = wal.ChainDelta
		if from > last {
			// The chain is ahead of this database's history (stale dir).
			kind = wal.ChainFull
		}
	}
	if kind == wal.ChainDelta {
		// Self-healing: a DELTA link is only sound if every base delta
		// still holds the full window (from, last]. The fold job prunes
		// through the ledger floor, and the "checkpoint" pin holds that at
		// or below the chain tail — but a chain inherited from a previous
		// process was never pinned here, so verify rather than trust.
		for _, t := range db.eng.TableNames() {
			d, derr := db.eng.Delta(t)
			if derr != nil {
				continue
			}
			if d.PrunedThrough() > from {
				kind = wal.ChainFull
				break
			}
		}
	}
	if kind == wal.ChainFull {
		seq, from = 1, 0
	}

	var payload bytes.Buffer
	if kind == wal.ChainFull {
		if err := db.eng.WriteSnapshot(&payload, offset); err != nil {
			return err
		}
	} else {
		if err := db.eng.WriteDeltaWindow(&payload, from, last); err != nil {
			return err
		}
	}
	frame := wal.EncodeLink(nil, &wal.ChainLink{
		Seq: seq, Kind: kind,
		From: uint64(from), To: uint64(last),
		Offset: uint64(offset), Payload: payload.Bytes(),
	})

	if err := fault.Inject(fault.PointChainWrite); err != nil {
		return err
	}
	tmp := filepath.Join(dir, chainLinkName(seq)+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(frame); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}

	if kind == wal.ChainFull && len(links) > 0 {
		// Restarting the chain: retire stale links highest-seq first, so a
		// crash mid-removal still leaves a contiguous (old) chain prefix —
		// always restorable together with the intact log suffix.
		for i := len(links) - 1; i >= 0; i-- {
			if links[i].Seq == 1 {
				continue // about to be renamed over
			}
			os.Remove(filepath.Join(dir, chainLinkName(links[i].Seq)))
		}
		if err := syncDir(dir); err != nil {
			os.Remove(tmp)
			return err
		}
	}

	if err := fault.Inject(fault.PointChainRename); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, chainLinkName(seq))); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := syncDir(dir); err != nil {
		return err
	}
	// Pin the chain tail: the next DELTA link serializes (last, ...], so
	// folding must not reclaim delta rows above last until then.
	db.eng.Horizons().Pin("checkpoint", last)
	return nil
}

// RestoreChain loads an incremental checkpoint chain written by
// CheckpointIncremental into a freshly opened database whose catalog has
// been re-created: it reads the snapshot of the most recent FULL link,
// replays each subsequent DELTA link's window, redoes the log suffix past
// the final link's offset, and points the capture process there. The same
// preconditions as Restore apply.
func (db *DB) RestoreChain(dir string) (CSN, error) {
	if db.logCap == nil {
		return 0, errors.New("rollingjoin: restore requires log capture mode")
	}
	if db.logCap.Started() {
		return 0, errors.New("rollingjoin: restore must run before any view definition or Source access")
	}
	if err := fault.Inject(fault.PointRestore); err != nil {
		return 0, err
	}
	links, err := readChainDir(dir)
	if err != nil {
		return 0, fmt.Errorf("rollingjoin: restore chain: %w", err)
	}
	if len(links) == 0 {
		return 0, errors.New("rollingjoin: restore chain: no checkpoint links")
	}
	// Start from the most recent FULL link; earlier links are superseded.
	start := 0
	for i, l := range links {
		if l.Kind == wal.ChainFull {
			start = i
		}
	}
	if _, err := db.eng.ReadSnapshot(bytes.NewReader(links[start].Payload)); err != nil {
		return 0, fmt.Errorf("rollingjoin: restore chain: %w", err)
	}
	for _, l := range links[start+1:] {
		if err := db.eng.ApplyDeltaWindow(bytes.NewReader(l.Payload), relalg.CSN(l.To)); err != nil {
			return 0, fmt.Errorf("rollingjoin: restore chain link %d: %w", l.Seq, err)
		}
	}
	tail := links[len(links)-1]
	offset := int64(tail.Offset)
	if _, err := db.eng.RecoverFrom(offset); err != nil {
		return 0, err
	}
	db.claimCapture()
	db.logCap = capture.NewLogCaptureAt(db.eng, offset, db.eng.LastCSN())
	db.src = db.logCap
	db.logCap.OnProgress(func(csn relalg.CSN) { db.sched.Notify(csn) })
	db.logCap.Start()
	// Future DELTA links resume from the tail; keep its window foldable no
	// further than the tail so the next CheckpointIncremental stays
	// incremental.
	db.eng.Horizons().Pin("checkpoint", CSN(tail.To))
	return db.eng.LastCSN(), nil
}
