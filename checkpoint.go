package rollingjoin

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/capture"
	"repro/internal/fault"
	"repro/internal/relalg"
)

// Checkpoint writes a snapshot of the committed database state (base
// tables, base delta tables, and the commit counter) to path. A database
// restored from the snapshot replays only the log suffix written after it,
// instead of the whole log.
//
// The snapshot is taken quiescently: every view's propagation is suspended,
// capture is allowed to catch up, and the snapshot is written while the
// caller refrains from committing writes. View propagation restarts before
// Checkpoint returns. Concurrent writers during the snapshot itself are
// the caller's responsibility to avoid.
func (db *DB) Checkpoint(path string) error {
	if db.logCap == nil {
		return errors.New("rollingjoin: checkpointing requires log capture mode")
	}
	db.ensureCapture()

	// Suspend propagation for a consistent delta snapshot.
	db.mu.Lock()
	views := make([]*View, 0, len(db.views))
	for _, v := range db.views {
		views = append(views, v)
	}
	db.mu.Unlock()
	var suspended []*View
	for _, v := range views {
		if v.Maintaining() {
			if err := v.StopPropagation(); err != nil {
				return err
			}
			suspended = append(suspended, v)
		}
	}
	defer func() {
		for _, v := range suspended {
			v.StartPropagation()
		}
	}()

	// Base deltas must reflect every commit the snapshot will include.
	last := db.eng.LastCSN()
	if err := db.logCap.WaitProgress(last); err != nil {
		return err
	}
	offset := db.eng.Log().Size()

	// Publish atomically: write and sync a temp file in the target
	// directory, rename it over the destination, then fsync the directory
	// so the rename itself is durable. A crash at any point leaves either
	// the old checkpoint or the new one — never a torn file at path.
	if err := fault.Inject(fault.PointCheckpointWrite); err != nil {
		return err
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := db.eng.WriteSnapshot(f, offset); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := fault.Inject(fault.PointCheckpointRename); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so a preceding rename inside it survives a
// crash. Filesystems that refuse to sync directories are tolerated.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, os.ErrInvalid) {
		return err
	}
	return nil
}

// Restore loads a snapshot written by Checkpoint into a freshly opened
// database whose catalog (tables, indexes) has been re-created, then
// replays the log suffix past the snapshot offset and points the capture
// process there. Call it instead of Recover when a snapshot exists:
//
//	db, _ := rollingjoin.Open(rollingjoin.Options{WALPath: wal})
//	createCatalog(db)
//	db.Restore("snap.ckpt")
//	// define views, resume work
//
// Wall-clock lookup (RefreshToTime, CSNAt) only covers commits captured
// after the restore; point-in-time refresh by CSN is unaffected.
func (db *DB) Restore(path string) (CSN, error) {
	if db.logCap == nil {
		return 0, errors.New("rollingjoin: restore requires log capture mode")
	}
	if db.logCap.Started() {
		return 0, errors.New("rollingjoin: restore must run before any view definition or Source access")
	}
	if err := fault.Inject(fault.PointRestore); err != nil {
		return 0, err
	}
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	offset, err := db.eng.ReadSnapshot(f)
	if err != nil {
		return 0, fmt.Errorf("rollingjoin: restore: %w", err)
	}
	// Redo the log suffix into the base tables.
	if _, err := db.eng.RecoverFrom(offset); err != nil {
		return 0, err
	}
	// Claim the capture start only now that the snapshot is loaded: a
	// failed Restore must leave the lazy start usable (the caller may fall
	// back to Recover plus normal capture). The stale reader positioned at
	// offset 0 is replaced with one pointed past the snapshot, its progress
	// notifications re-wired to the maintenance scheduler, and started.
	db.claimCapture()
	db.logCap = capture.NewLogCaptureAt(db.eng, offset, db.eng.LastCSN())
	db.src = db.logCap
	db.logCap.OnProgress(func(csn relalg.CSN) { db.sched.Notify(csn) })
	db.logCap.Start()
	return db.eng.LastCSN(), nil
}
