package rollingjoin

// Tests for the unified maintenance runtime: many views sharing one
// scheduler under concurrent writers, start/stop churn, graceful drain on
// Close, context-aware waits, auto-refresh convergence, and backpressure.
// Run with -race; every test here is written to be loop-safe (-count=N).

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// seedItems loads the two-item catalog the orders/items tests join against.
func seedItems(t *testing.T, db *DB) {
	t.Helper()
	if _, err := db.Update(func(tx *Tx) error {
		if err := tx.Insert("items", Str("ball"), Int(5)); err != nil {
			return err
		}
		return tx.Insert("items", Str("bat"), Int(20))
	}); err != nil {
		t.Fatal(err)
	}
}

func namedOrderSpec(name string) ViewSpec {
	return ViewSpec{
		Name:   name,
		Tables: []string{"orders", "items"},
		Joins:  []Join{{"orders", "item", "items", "item"}},
	}
}

// multisetOf keys tuples by their printed form for multiset comparison.
func multisetOf(rows []Tuple) map[string]int {
	m := make(map[string]int, len(rows))
	for _, r := range rows {
		m[fmt.Sprintf("%v", r)]++
	}
	return m
}

func sameMultiset(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, n := range a {
		if b[k] != n {
			return false
		}
	}
	return true
}

// runOrderWriters commits txns order transactions (mostly inserts, some
// deletes) across workers concurrent goroutines and returns the last CSN.
func runOrderWriters(t *testing.T, db *DB, workers, txns int) CSN {
	t.Helper()
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	var mu sync.Mutex
	var last CSN
	per := txns / workers
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				item := "ball"
				if (w+i)%2 == 1 {
					item = "bat"
				}
				id := int64(w*per + i)
				var csn CSN
				var err error
				if i%9 == 8 {
					csn, err = db.Update(func(tx *Tx) error {
						_, derr := tx.Delete("orders", "id", EQ, Int(id-4), 1)
						return derr
					})
				} else {
					csn, err = db.Update(func(tx *Tx) error {
						return tx.Insert("orders", Int(id), Str(item))
					})
				}
				if err != nil {
					errs <- err
					return
				}
				mu.Lock()
				if csn > last {
					last = csn
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	return last
}

// TestRuntimeManyViews runs plain views (rolling and stepwise, one with
// AutoRefresh), a union view, and an auto-refreshed summary — all on the
// shared scheduler — under concurrent writers, then drains and verifies
// every one against a fresh recomputation oracle.
func TestRuntimeManyViews(t *testing.T) {
	db := newTestDB(t, Options{})
	seedItems(t, db)

	branch := func(name, item string) ViewSpec {
		s := namedOrderSpec(name)
		s.Filters = []Filter{{Table: "items", Column: "item", Op: EQ, Value: Str(item)}}
		return s
	}
	uv, err := db.DefineUnionView("u_all",
		[]ViewSpec{branch("u_ball", "ball"), branch("u_bat", "bat")},
		Maintain{Interval: 4})
	if err != nil {
		t.Fatal(err)
	}

	views := make([]*View, 3)
	opts := []Maintain{
		{Interval: 4},
		{Interval: 8, AutoRefresh: true},
		{Interval: 2, Algorithm: AlgorithmStepwise},
	}
	for i, opt := range opts {
		if views[i], err = db.DefineView(namedOrderSpec(fmt.Sprintf("many%d", i)), opt); err != nil {
			t.Fatal(err)
		}
	}
	sum, err := views[0].DefineSummary("many_rev", []string{"item"}, []string{"price"})
	if err != nil {
		t.Fatal(err)
	}
	sum.StartAutoRefresh()

	last := runOrderWriters(t, db, 3, 90)

	oracleSpec := namedOrderSpec("oracle")
	oracle, err := db.Query(oracleSpec)
	if err != nil {
		t.Fatal(err)
	}
	want := multisetOf(oracle.Rows)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i, v := range views {
		if err := v.CatchUpContext(ctx, last); err != nil {
			t.Fatalf("view %d: %v", i, err)
		}
		if _, err := v.Refresh(); err != nil {
			t.Fatalf("view %d: %v", i, err)
		}
		if got := multisetOf(v.Rows()); !sameMultiset(got, want) {
			t.Fatalf("view %d diverged from oracle: %d vs %d distinct rows", i, len(got), len(want))
		}
	}
	if err := uv.CatchUpContext(ctx, last); err != nil {
		t.Fatal(err)
	}
	if _, err := uv.Refresh(); err != nil {
		t.Fatal(err)
	}
	if got := multisetOf(uv.Rows()); !sameMultiset(got, want) {
		t.Fatalf("union view diverged from oracle")
	}

	// The auto-refreshed summary converges without an explicit Refresh.
	wantCount := make(map[string]int64)
	var wantSum map[string]float64 = map[string]float64{}
	for _, r := range oracle.Rows {
		item := r[1].AsString()
		wantCount[item]++
		wantSum[item] += float64(r[3].AsInt())
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		rows := sum.Rows()
		okAll := len(rows) == len(wantCount)
		for _, r := range rows {
			if wantCount[r.Key[0].AsString()] != r.Count || wantSum[r.Key[0].AsString()] != r.Sums[0] {
				okAll = false
			}
		}
		if okAll {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("auto-refreshed summary did not converge: %+v (want counts %v)", rows, wantCount)
		}
		time.Sleep(time.Millisecond)
	}
	if err := sum.StopAutoRefresh(); err != nil {
		t.Fatal(err)
	}
}

// TestStartStopChurn hammers StartPropagation/StopPropagation from many
// goroutines while writers commit; the lifecycle must stay idempotent and
// race-free, and the view must still converge afterwards.
func TestStartStopChurn(t *testing.T) {
	db := newTestDB(t, Options{})
	seedItems(t, db)
	v, err := db.DefineView(namedOrderSpec("churn"), Maintain{Interval: 4})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var churnWG sync.WaitGroup
	for g := 0; g < 8; g++ {
		churnWG.Add(1)
		go func() {
			defer churnWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				v.StartPropagation()
				if err := v.StopPropagation(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	last := runOrderWriters(t, db, 2, 60)
	close(stop)
	churnWG.Wait()
	v.StartPropagation()
	if !v.Maintaining() {
		t.Fatal("view should be maintaining after final Start")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := v.WaitForHWMContext(ctx, last); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Refresh(); err != nil {
		t.Fatal(err)
	}
	oracle, err := db.Query(namedOrderSpec("oracle"))
	if err != nil {
		t.Fatal(err)
	}
	if !sameMultiset(multisetOf(v.Rows()), multisetOf(oracle.Rows)) {
		t.Fatal("churned view diverged from oracle")
	}
}

// TestCloseDrainsMaintenance closes the database while auto-refreshed
// maintenance is mid-flight: Close must drain the in-flight steps (no
// panics, no use-after-close), and the materialization time must be frozen
// once Close returns.
func TestCloseDrainsMaintenance(t *testing.T) {
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable("orders", Col("id", TypeInt), Col("item", TypeString)); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable("items", Col("item", TypeString), Col("price", TypeInt)); err != nil {
		t.Fatal(err)
	}
	seedItems(t, db)
	v, err := db.DefineView(namedOrderSpec("drain"), Maintain{Interval: 2, AutoRefresh: true})
	if err != nil {
		t.Fatal(err)
	}
	runOrderWriters(t, db, 2, 40)
	// Close while propagation and apply are likely still catching up.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	mat := v.MatTime()
	hwm := v.HWM()
	time.Sleep(10 * time.Millisecond)
	if v.MatTime() != mat || v.HWM() != hwm {
		t.Fatalf("maintenance advanced after Close: mat %d→%d hwm %d→%d", mat, v.MatTime(), hwm, v.HWM())
	}
}

// TestWaitForHWMContext covers the context-aware wait: it times out cleanly
// when nothing advances the HWM and succeeds once propagation is driven.
func TestWaitForHWMContext(t *testing.T) {
	db := newTestDB(t, Options{})
	seedItems(t, db)
	v, err := db.DefineView(namedOrderSpec("waitctx"), Maintain{Interval: 2, Manual: true})
	if err != nil {
		t.Fatal(err)
	}
	last, err := db.Update(func(tx *Tx) error {
		return tx.Insert("orders", Int(1), Str("ball"))
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := v.WaitForHWMContext(ctx, last); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded with no propagation, got %v", err)
	}

	v.StartPropagation()
	ctx2, cancel2 := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel2()
	if err := v.WaitForHWMContext(ctx2, last); err != nil {
		t.Fatal(err)
	}
	if v.HWM() < last {
		t.Fatalf("hwm %d < %d after successful wait", v.HWM(), last)
	}
}

// TestAutoRefreshConverges checks that Maintain.AutoRefresh rolls the
// materialized view forward with no Refresh calls at all.
func TestAutoRefreshConverges(t *testing.T) {
	db := newTestDB(t, Options{})
	seedItems(t, db)
	v, err := db.DefineView(namedOrderSpec("auto"), Maintain{Interval: 4, AutoRefresh: true})
	if err != nil {
		t.Fatal(err)
	}
	last := runOrderWriters(t, db, 2, 50)
	deadline := time.Now().Add(30 * time.Second)
	for v.MatTime() < last {
		if time.Now().After(deadline) {
			t.Fatalf("auto refresh stalled at %d (want %d, hwm %d)", v.MatTime(), last, v.HWM())
		}
		time.Sleep(time.Millisecond)
	}
	oracle, err := db.Query(namedOrderSpec("oracle"))
	if err != nil {
		t.Fatal(err)
	}
	if !sameMultiset(multisetOf(v.Rows()), multisetOf(oracle.Rows)) {
		t.Fatal("auto-refreshed view diverged from oracle")
	}
}

// TestBackpressureParksAndDemandBypasses drives a view with a tiny
// MaxBacklog and nobody applying: propagation must park (visible in the
// scheduler counters) well short of the last commit, and a CatchUp demand
// must push it through the backlog limit anyway.
func TestBackpressureParks(t *testing.T) {
	db := newTestDB(t, Options{})
	seedItems(t, db)
	v, err := db.DefineView(namedOrderSpec("bp"), Maintain{Interval: 2, MaxBacklog: 4})
	if err != nil {
		t.Fatal(err)
	}
	last := runOrderWriters(t, db, 2, 60)

	// Propagation parks once more than MaxBacklog delta rows await apply.
	deadline := time.Now().Add(30 * time.Second)
	for db.Engine().Stats().Sched.Parks == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("propagation never parked (hwm %d, unapplied %d)", v.HWM(), v.Stats().DeltaRowsUnapplied)
		}
		time.Sleep(time.Millisecond)
	}
	if v.HWM() >= last {
		t.Fatalf("hwm %d reached %d despite backpressure", v.HWM(), last)
	}

	// An explicit demand overrides parking: CatchUp must complete.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := v.CatchUpContext(ctx, last); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Refresh(); err != nil {
		t.Fatal(err)
	}
	oracle, err := db.Query(namedOrderSpec("oracle"))
	if err != nil {
		t.Fatal(err)
	}
	if !sameMultiset(multisetOf(v.Rows()), multisetOf(oracle.Rows)) {
		t.Fatal("backpressured view diverged from oracle")
	}
}
