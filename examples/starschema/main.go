// Star schema: a hot fact table joined to two rarely-updated dimension
// tables — the paper's Section 3.4 motivation for per-relation propagation
// intervals. The fact table gets a short interval (small, frequent forward
// queries); the dimensions get long ones.
package main

import (
	"fmt"
	"log"
	"math/rand"

	rollingjoin "repro"
)

func main() {
	db, err := rollingjoin.Open(rollingjoin.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	must(db.CreateTable("sales",
		rollingjoin.Col("product_id", rollingjoin.TypeInt),
		rollingjoin.Col("store_id", rollingjoin.TypeInt),
		rollingjoin.Col("amount", rollingjoin.TypeInt)))
	must(db.CreateTable("products",
		rollingjoin.Col("product_id", rollingjoin.TypeInt),
		rollingjoin.Col("category", rollingjoin.TypeString)))
	must(db.CreateTable("stores",
		rollingjoin.Col("store_id", rollingjoin.TypeInt),
		rollingjoin.Col("region", rollingjoin.TypeString)))

	// Seed the dimensions.
	regions := []string{"east", "west"}
	categories := []string{"toys", "tools", "food"}
	if _, err := db.Update(func(tx *rollingjoin.Tx) error {
		for p := 0; p < 20; p++ {
			if err := tx.Insert("products", rollingjoin.Int(int64(p)), rollingjoin.Str(categories[p%3])); err != nil {
				return err
			}
		}
		for s := 0; s < 5; s++ {
			if err := tx.Insert("stores", rollingjoin.Int(int64(s)), rollingjoin.Str(regions[s%2])); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		log.Fatal(err)
	}

	// Per-relation intervals: sales rolls forward every 8 commits, the
	// dimensions every 256 — rarely-changing tables get wide, cheap
	// forward queries.
	view, err := db.DefineView(rollingjoin.ViewSpec{
		Name:   "sales_detail",
		Tables: []string{"sales", "products", "stores"},
		Joins: []rollingjoin.Join{
			{LeftTable: "sales", LeftColumn: "product_id", RightTable: "products", RightColumn: "product_id"},
			{LeftTable: "sales", LeftColumn: "store_id", RightTable: "stores", RightColumn: "store_id"},
		},
		Filters: []rollingjoin.Filter{{Table: "stores", Column: "region", Op: rollingjoin.EQ, Value: rollingjoin.Str("east")}},
	}, rollingjoin.Maintain{Intervals: []rollingjoin.CSN{8, 256, 256}})
	if err != nil {
		log.Fatal(err)
	}

	// 500 fact inserts with the occasional dimension change mixed in.
	r := rand.New(rand.NewSource(7))
	var last rollingjoin.CSN
	for i := 0; i < 500; i++ {
		csn, err := db.Update(func(tx *rollingjoin.Tx) error {
			if r.Intn(50) == 0 {
				// A rare dimension update: re-categorize a product.
				if _, err := tx.Delete("products", "product_id", rollingjoin.EQ, rollingjoin.Int(int64(r.Intn(20))), 1); err != nil {
					return err
				}
				return tx.Insert("products", rollingjoin.Int(int64(r.Intn(20))), rollingjoin.Str(categories[r.Intn(3)]))
			}
			return tx.Insert("sales",
				rollingjoin.Int(int64(r.Intn(20))),
				rollingjoin.Int(int64(r.Intn(5))),
				rollingjoin.Int(int64(1+r.Intn(100))))
		})
		if err != nil {
			log.Fatal(err)
		}
		last = csn
	}

	// CatchUp demands the high-water mark reach the last commit: the
	// scheduler runs the view's propagation (bypassing any backpressure
	// parking) and the call returns once the delta is complete there.
	if err := view.CatchUp(last); err != nil {
		log.Fatal(err)
	}
	if _, err := view.Refresh(); err != nil {
		log.Fatal(err)
	}
	st := view.Stats()
	fmt.Printf("sales_detail holds %d rows for the east region\n", view.Cardinality())
	fmt.Printf("per-relation progress (sales, products, stores): %v\n", view.TFwd())
	fmt.Printf("forward queries: %d, compensations: %d, empty windows skipped: %d\n",
		st.ForwardQueries, st.CompensationQueries, st.SkippedEmptyWindows)
	fmt.Println("note how the wide dimension intervals turn almost all dimension work into skipped empty windows")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
