// Contention tuning: builds a backlog of captured changes, then measures
// writer commit latency while the backlog is propagated with different
// propagation interval sizes — the paper's central knob. Small propagation
// transactions limit contention between the refresh process and concurrent
// updates; one giant transaction stalls writers for its whole duration.
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"
	"sort"
	"sync"
	"time"

	rollingjoin "repro"
)

func main() {
	for _, interval := range []rollingjoin.CSN{8, 64, 2048} {
		mean, p99, stallRate, n := run(interval)
		fmt.Printf("propagation interval %4d commits: %5d writer txns, mean %8s  p99 %8s  stalls>1ms per 1k txns: %.1f\n",
			interval, n, mean.Round(time.Microsecond), p99.Round(time.Microsecond), stallRate)
	}
	fmt.Println("\nsmaller intervals mean smaller propagation transactions, shorter S-lock")
	fmt.Println("windows on the base tables, and lower tail latency for concurrent writers.")
}

// run builds a 2-table join view with a 1500-commit backlog, then drains the
// backlog with the given propagation interval while a concurrent writer
// measures its commit latencies. stallRate is the number of >1ms commits
// per thousand writer transactions.
func run(interval rollingjoin.CSN) (mean, p99 time.Duration, stallRate float64, count int) {
	db, err := rollingjoin.Open(rollingjoin.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	must(db.CreateTable("events",
		rollingjoin.Col("k", rollingjoin.TypeInt),
		rollingjoin.Col("v", rollingjoin.TypeInt)))
	must(db.CreateTable("kinds",
		rollingjoin.Col("k", rollingjoin.TypeInt),
		rollingjoin.Col("label", rollingjoin.TypeString)))

	// Only 15 distinct join keys: high fanout makes a propagation
	// transaction's lock-hold time proportional to its window width.
	r := rand.New(rand.NewSource(1))
	if _, err := db.Update(func(tx *rollingjoin.Tx) error {
		// ~100 kinds rows per key: every event joins ~100 kinds, so a
		// propagation query's work scales with its delta window width.
		for i := 0; i < 1500; i++ {
			if err := tx.Insert("kinds", rollingjoin.Int(int64(i%15)), rollingjoin.Str("kind")); err != nil {
				return err
			}
		}
		for i := 0; i < 1500; i++ {
			if err := tx.Insert("events", rollingjoin.Int(int64(r.Intn(15))), rollingjoin.Int(int64(i))); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		log.Fatal(err)
	}

	// Manual maintenance: we control exactly when propagation happens.
	view, err := db.DefineView(rollingjoin.ViewSpec{
		Name:   "labeled_events",
		Tables: []string{"events", "kinds"},
		Joins:  []rollingjoin.Join{{LeftTable: "events", LeftColumn: "k", RightTable: "kinds", RightColumn: "k"}},
	}, rollingjoin.Maintain{Interval: interval, Manual: true})
	if err != nil {
		log.Fatal(err)
	}

	// Build the backlog with propagation suspended.
	var target rollingjoin.CSN
	for i := 0; i < 1500; i++ {
		csn, err := db.Update(func(tx *rollingjoin.Tx) error {
			return tx.Insert("events", rollingjoin.Int(int64(r.Intn(15))), rollingjoin.Int(int64(i)))
		})
		if err != nil {
			log.Fatal(err)
		}
		target = csn
	}

	// Drain the backlog while a concurrent writer measures its latency.
	var lat []time.Duration
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			// Alternate between the two tables so the writer contends with
			// the propagation queries' S locks on both sides of the join.
			start := time.Now()
			if _, err := db.Update(func(tx *rollingjoin.Tx) error {
				if i%4 == 0 {
					return tx.Insert("kinds", rollingjoin.Int(int64(100+i%50)), rollingjoin.Str("probe"))
				}
				return tx.Insert("events", rollingjoin.Int(int64(i%15)), rollingjoin.Int(int64(i)))
			}); err != nil {
				return
			}
			lat = append(lat, time.Since(start))
			time.Sleep(50 * time.Microsecond) // pace the probe
		}
	}()
	for view.HWM() < target {
		if err := view.PropagateStep(); err != nil && !errors.Is(err, rollingjoin.ErrNoProgress) {
			log.Fatal(err)
		}
	}
	close(done)
	wg.Wait()

	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	if len(lat) == 0 {
		return 0, 0, 0, 0
	}
	var sum time.Duration
	stalls := 0
	for _, d := range lat {
		sum += d
		if d > time.Millisecond {
			stalls++
		}
	}
	return sum / time.Duration(len(lat)), lat[len(lat)*99/100],
		1000 * float64(stalls) / float64(len(lat)), len(lat)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
