// Point-in-time refresh: the paper's "decide at 8:00 pm to refresh a
// materialized view from its 4:00 pm state to its 5:00 pm state" scenario
// (Section 1), compressed into milliseconds. The refresh decision and cost
// are fully decoupled from the refresh target time: because view delta
// tuples are timestamped, the apply process selects exactly the window it
// wants, long after the fact.
package main

import (
	"fmt"
	"log"
	"time"

	rollingjoin "repro"
)

func main() {
	db, err := rollingjoin.Open(rollingjoin.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	must(db.CreateTable("trades",
		rollingjoin.Col("id", rollingjoin.TypeInt),
		rollingjoin.Col("sym", rollingjoin.TypeString)))
	must(db.CreateTable("symbols",
		rollingjoin.Col("sym", rollingjoin.TypeString),
		rollingjoin.Col("exchange", rollingjoin.TypeString)))

	if _, err := db.Update(func(tx *rollingjoin.Tx) error {
		tx.Insert("symbols", rollingjoin.Str("ACME"), rollingjoin.Str("NYSE"))
		tx.Insert("symbols", rollingjoin.Str("GLOBEX"), rollingjoin.Str("CME"))
		return nil
	}); err != nil {
		log.Fatal(err)
	}

	view, err := db.DefineView(rollingjoin.ViewSpec{
		Name:   "trades_by_exchange",
		Tables: []string{"trades", "symbols"},
		Joins:  []rollingjoin.Join{{LeftTable: "trades", LeftColumn: "sym", RightTable: "symbols", RightColumn: "sym"}},
	}, rollingjoin.Maintain{Interval: 4})
	if err != nil {
		log.Fatal(err)
	}

	// "The trading day": three bursts of activity with timestamps we note
	// along the way. fourPM and fivePM play the paper's wall-clock roles.
	insertTrades := func(from, n int) rollingjoin.CSN {
		var last rollingjoin.CSN
		for i := from; i < from+n; i++ {
			sym := "ACME"
			if i%3 == 0 {
				sym = "GLOBEX"
			}
			csn, err := db.Update(func(tx *rollingjoin.Tx) error {
				return tx.Insert("trades", rollingjoin.Int(int64(i)), rollingjoin.Str(sym))
			})
			if err != nil {
				log.Fatal(err)
			}
			last = csn
		}
		return last
	}

	insertTrades(0, 20)
	fourPM := time.Now()
	time.Sleep(2 * time.Millisecond)
	insertTrades(20, 15)
	fivePM := time.Now()
	time.Sleep(2 * time.Millisecond)
	last := insertTrades(35, 25) // activity after 5pm keeps flowing

	// "8:00 pm": load is low, propagation has long caught up, and we decide
	// only now which historical state the view should present.
	view.WaitForHWM(last)

	csn4, err := view.RefreshToTime(fourPM)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("view at 4:00 pm (commit %d): %d trades\n", csn4, view.Cardinality())

	csn5, err := view.RefreshToTime(fivePM)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("view at 5:00 pm (commit %d): %d trades\n", csn5, view.Cardinality())

	// Rolling backwards is impossible — the view only moves forward.
	if _, err := view.RefreshToTime(fourPM); err != nil {
		fmt.Printf("refreshing back to 4:00 pm correctly refused: %v\n", err)
	}

	now, err := view.Refresh()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("view at the high-water mark (commit %d): %d trades\n", now, view.Cardinality())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
