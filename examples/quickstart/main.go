// Quickstart: define a join view over two tables, stream updates, and
// refresh the materialized view incrementally.
package main

import (
	"fmt"
	"log"

	rollingjoin "repro"
)

func main() {
	db, err := rollingjoin.Open(rollingjoin.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Two base tables: orders reference items by name.
	must(db.CreateTable("orders",
		rollingjoin.Col("id", rollingjoin.TypeInt),
		rollingjoin.Col("item", rollingjoin.TypeString)))
	must(db.CreateTable("items",
		rollingjoin.Col("item", rollingjoin.TypeString),
		rollingjoin.Col("price", rollingjoin.TypeInt)))

	if _, err := db.Update(func(tx *rollingjoin.Tx) error {
		if err := tx.Insert("items", rollingjoin.Str("ball"), rollingjoin.Int(5)); err != nil {
			return err
		}
		return tx.Insert("items", rollingjoin.Str("bat"), rollingjoin.Int(20))
	}); err != nil {
		log.Fatal(err)
	}

	// A materialized join view, maintained asynchronously on the database's
	// shared scheduler: propagation wakes when the capture process notifies
	// it of new commits, and AutoRefresh schedules application too.
	view, err := db.DefineView(rollingjoin.ViewSpec{
		Name:   "order_prices",
		Tables: []string{"orders", "items"},
		Joins:  []rollingjoin.Join{{LeftTable: "orders", LeftColumn: "item", RightTable: "items", RightColumn: "item"}},
		Output: []rollingjoin.OutCol{{Table: "orders", Column: "id"}, {Table: "items", Column: "price"}},
	}, rollingjoin.Maintain{Interval: 4, AutoRefresh: true})
	if err != nil {
		log.Fatal(err)
	}

	// Stream some orders.
	var last rollingjoin.CSN
	items := []string{"ball", "bat"}
	for i := 0; i < 10; i++ {
		csn, err := db.Update(func(tx *rollingjoin.Tx) error {
			return tx.Insert("orders", rollingjoin.Int(int64(i)), rollingjoin.Str(items[i%2]))
		})
		if err != nil {
			log.Fatal(err)
		}
		last = csn
	}

	// WaitForHWM blocks event-driven (no polling) until propagation has
	// minted the view delta through the last commit; Refresh then applies
	// any of it the auto-refresher hasn't already rolled in.
	view.WaitForHWM(last)
	reached, err := view.Refresh()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("view refreshed to commit %d\n", reached)
	for _, row := range view.Rows() {
		fmt.Printf("  order %v costs %v\n", row[0], row[1])
	}
	st := view.Stats()
	fmt.Printf("maintenance: %d forward + %d compensation queries, %d delta rows applied\n",
		st.ForwardQueries, st.CompensationQueries, st.RowsApplied)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
