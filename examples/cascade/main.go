// Cascade: views over views. A materialized view is itself a relation —
// its timed delta table registers under its name — so further views and
// aggregates stack on top of it and are maintained through the same
// propagate/apply machinery, each level with its own high-water mark and
// point-in-time refresh.
//
// The cascade here is fact → join view → per-region rollup → top view:
//
//	orders ⋈ regions        (orders_enriched, a rolling join view)
//	GROUP BY region          (regional, an incremental aggregate)
//	WHERE total >= 100       (big_regions, a view over the aggregate)
package main

import (
	"fmt"
	"log"

	rollingjoin "repro"
)

func main() {
	db, err := rollingjoin.Open(rollingjoin.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	must(db.CreateTable("orders",
		rollingjoin.Col("oid", rollingjoin.TypeInt),
		rollingjoin.Col("cust", rollingjoin.TypeInt),
		rollingjoin.Col("amt", rollingjoin.TypeFloat)))
	must(db.CreateTable("regions",
		rollingjoin.Col("cust", rollingjoin.TypeInt),
		rollingjoin.Col("region", rollingjoin.TypeString)))

	if _, err := db.Update(func(tx *rollingjoin.Tx) error {
		for c := 0; c < 6; c++ {
			region := []string{"east", "west", "north"}[c%3]
			if err := tx.Insert("regions", rollingjoin.Int(int64(c)), rollingjoin.Str(region)); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		log.Fatal(err)
	}

	// Level 1: the join view.
	enriched, err := db.DefineView(rollingjoin.ViewSpec{
		Name:   "orders_enriched",
		Tables: []string{"orders", "regions"},
		Joins:  []rollingjoin.Join{{LeftTable: "orders", LeftColumn: "cust", RightTable: "regions", RightColumn: "cust"}},
	}, rollingjoin.Maintain{Interval: 4})
	if err != nil {
		log.Fatal(err)
	}

	// Level 2: an incremental aggregate over the view.
	regional, err := db.DefineAggregate(rollingjoin.AggSpec{
		Name:    "regional",
		Source:  enriched.Name(),
		GroupBy: []string{"region"},
		Aggs: []rollingjoin.Agg{
			{Func: rollingjoin.AggCount},
			{Func: rollingjoin.AggSum, Column: "amt", As: "total"},
			{Func: rollingjoin.AggMax, Column: "amt"},
		},
	}, rollingjoin.Maintain{})
	if err != nil {
		log.Fatal(err)
	}

	// Level 3: a view over the aggregate's output.
	big, err := db.DefineView(rollingjoin.ViewSpec{
		Name:    "big_regions",
		Tables:  []string{"regional"},
		Filters: []rollingjoin.Filter{{Table: "regional", Column: "total", Op: rollingjoin.GE, Value: rollingjoin.Float(100)}},
	}, rollingjoin.Maintain{Interval: 4})
	if err != nil {
		log.Fatal(err)
	}

	var last rollingjoin.CSN
	for i := 0; i < 24; i++ {
		csn, err := db.Update(func(tx *rollingjoin.Tx) error {
			return tx.Insert("orders",
				rollingjoin.Int(int64(i)),
				rollingjoin.Int(int64(i%6)),
				rollingjoin.Float(float64(5+10*(i%4))))
		})
		if err != nil {
			log.Fatal(err)
		}
		last = csn
	}

	// Catching the TOP of the cascade up drives every level beneath it:
	// its composite source waits on the rollup's high-water mark, which
	// waits on the join view's, which waits on change capture.
	must(big.CatchUp(last))
	if _, err := enriched.Refresh(); err != nil {
		log.Fatal(err)
	}
	if _, err := regional.Refresh(); err != nil {
		log.Fatal(err)
	}
	if _, err := big.Refresh(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("cascade at commit %d (enriched hwm=%d, regional hwm=%d, big hwm=%d):\n\n",
		last, enriched.HWM(), regional.HWM(), big.HWM())
	fmt.Println("regional rollup:")
	for _, r := range regional.Rows() {
		fmt.Printf("  %-6s orders=%-3d total=%-5.0f max=%.0f\n",
			r[0], r[1].AsInt(), r[2].AsFloat(), r[3].AsFloat())
	}
	fmt.Println("\nregions with total >= 100:")
	for _, r := range big.Rows() {
		fmt.Printf("  %-6s total=%.0f\n", r[0], r[2].AsFloat())
	}

	// Deletes retract through every level, MIN/MAX included: remove the
	// largest orders and watch the rollup's max fall.
	if _, err := db.Update(func(tx *rollingjoin.Tx) error {
		_, derr := tx.Delete("orders", "amt", rollingjoin.EQ, rollingjoin.Float(35), 0)
		return derr
	}); err != nil {
		log.Fatal(err)
	}
	must(big.CatchUp(db.LastCSN()))
	if _, err := enriched.Refresh(); err != nil {
		log.Fatal(err)
	}
	if _, err := regional.Refresh(); err != nil {
		log.Fatal(err)
	}
	if _, err := big.Refresh(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nafter deleting every 35-amt order:")
	for _, r := range regional.Rows() {
		fmt.Printf("  %-6s orders=%-3d total=%-5.0f max=%.0f\n",
			r[0], r[1].AsInt(), r[2].AsFloat(), r[3].AsFloat())
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
