// Aggregates: maintain GROUP BY rollups over a join view with the
// first-class incremental aggregate operator — COUNT/SUM/AVG via
// group-level compensation and MIN/MAX with retraction handling. The
// aggregate is itself a maintained relation: it emits its own timed
// delta of group-level changes and supports the same point-in-time
// refresh as the view it summarizes.
package main

import (
	"fmt"
	"log"

	rollingjoin "repro"
)

func main() {
	db, err := rollingjoin.Open(rollingjoin.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	must(db.CreateTable("orders",
		rollingjoin.Col("id", rollingjoin.TypeInt),
		rollingjoin.Col("item", rollingjoin.TypeString),
		rollingjoin.Col("qty", rollingjoin.TypeInt)))
	must(db.CreateTable("items",
		rollingjoin.Col("item", rollingjoin.TypeString),
		rollingjoin.Col("price", rollingjoin.TypeFloat)))

	if _, err := db.Update(func(tx *rollingjoin.Tx) error {
		tx.Insert("items", rollingjoin.Str("ball"), rollingjoin.Float(5))
		tx.Insert("items", rollingjoin.Str("bat"), rollingjoin.Float(20))
		tx.Insert("items", rollingjoin.Str("cap"), rollingjoin.Float(9))
		return nil
	}); err != nil {
		log.Fatal(err)
	}

	view, err := db.DefineView(rollingjoin.ViewSpec{
		Name:   "order_detail",
		Tables: []string{"orders", "items"},
		Joins:  []rollingjoin.Join{{LeftTable: "orders", LeftColumn: "item", RightTable: "items", RightColumn: "item"}},
	}, rollingjoin.Maintain{Interval: 8})
	if err != nil {
		log.Fatal(err)
	}

	// Per-item rollup over the join view: order count, revenue total and
	// average, cheapest and priciest sale. The aggregate's source is the
	// view's own delta stream, not the base tables.
	revenue, err := db.DefineAggregate(rollingjoin.AggSpec{
		Name:    "revenue",
		Source:  view.Name(),
		GroupBy: []string{"item"},
		Aggs: []rollingjoin.Agg{
			{Func: rollingjoin.AggCount},
			{Func: rollingjoin.AggSum, Column: "price", As: "total"},
			{Func: rollingjoin.AggAvg, Column: "price"},
			{Func: rollingjoin.AggMin, Column: "price"},
			{Func: rollingjoin.AggMax, Column: "price"},
		},
	}, rollingjoin.Maintain{})
	if err != nil {
		log.Fatal(err)
	}

	items := []string{"ball", "bat", "cap"}
	var mid, last rollingjoin.CSN
	for i := 0; i < 30; i++ {
		csn, err := db.Update(func(tx *rollingjoin.Tx) error {
			return tx.Insert("orders",
				rollingjoin.Int(int64(i)),
				rollingjoin.Str(items[i%3]),
				rollingjoin.Int(int64(1+i%4)))
		})
		if err != nil {
			log.Fatal(err)
		}
		if i == 14 {
			mid = csn
		}
		last = csn
	}

	must(revenue.CatchUp(last))

	// Point-in-time aggregates: revenue as of the 15th order...
	must(revenue.RefreshTo(mid))
	fmt.Printf("revenue as of commit %d:\n", mid)
	printAggregate(revenue)

	// ...then as of now.
	now, err := revenue.Refresh()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrevenue as of commit %d:\n", now)
	printAggregate(revenue)
}

func printAggregate(a *rollingjoin.AggregateView) {
	for _, row := range a.Rows() {
		fmt.Printf("  %-5s orders=%-3d total=%-4.0f avg=%-5.2f min=%-3.0f max=%.0f\n",
			row[0], row[1].AsInt(), row[2].AsFloat(), row[3].AsFloat(), row[4].AsFloat(), row[5].AsFloat())
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
