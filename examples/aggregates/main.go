// Aggregates: maintain GROUP BY revenue totals over a join view using the
// summary-delta method — the paper's aggregation extension. The summary
// supports the same point-in-time refresh as the view it summarizes.
package main

import (
	"fmt"
	"log"

	rollingjoin "repro"
)

func main() {
	db, err := rollingjoin.Open(rollingjoin.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	must(db.CreateTable("orders",
		rollingjoin.Col("id", rollingjoin.TypeInt),
		rollingjoin.Col("item", rollingjoin.TypeString),
		rollingjoin.Col("qty", rollingjoin.TypeInt)))
	must(db.CreateTable("items",
		rollingjoin.Col("item", rollingjoin.TypeString),
		rollingjoin.Col("price", rollingjoin.TypeInt)))

	if _, err := db.Update(func(tx *rollingjoin.Tx) error {
		tx.Insert("items", rollingjoin.Str("ball"), rollingjoin.Int(5))
		tx.Insert("items", rollingjoin.Str("bat"), rollingjoin.Int(20))
		tx.Insert("items", rollingjoin.Str("cap"), rollingjoin.Int(9))
		return nil
	}); err != nil {
		log.Fatal(err)
	}

	view, err := db.DefineView(rollingjoin.ViewSpec{
		Name:   "order_detail",
		Tables: []string{"orders", "items"},
		Joins:  []rollingjoin.Join{{LeftTable: "orders", LeftColumn: "item", RightTable: "items", RightColumn: "item"}},
	}, rollingjoin.Maintain{Interval: 8})
	if err != nil {
		log.Fatal(err)
	}

	// COUNT(*) and SUM(price) per item over the join view.
	revenue, err := view.DefineSummary("revenue", []string{"item"}, []string{"price"})
	if err != nil {
		log.Fatal(err)
	}

	items := []string{"ball", "bat", "cap"}
	var mid, last rollingjoin.CSN
	for i := 0; i < 30; i++ {
		csn, err := db.Update(func(tx *rollingjoin.Tx) error {
			return tx.Insert("orders",
				rollingjoin.Int(int64(i)),
				rollingjoin.Str(items[i%3]),
				rollingjoin.Int(int64(1+i%4)))
		})
		if err != nil {
			log.Fatal(err)
		}
		if i == 14 {
			mid = csn
		}
		last = csn
	}

	view.WaitForHWM(last)

	// Point-in-time aggregates: revenue as of the 15th order...
	if err := revenue.RefreshTo(mid); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("revenue as of commit %d:\n", mid)
	printSummary(revenue)

	// ...then as of now.
	now, err := revenue.Refresh()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrevenue as of commit %d:\n", now)
	printSummary(revenue)
}

func printSummary(s *rollingjoin.Summary) {
	for _, row := range s.Rows() {
		fmt.Printf("  %-5s orders=%-3d total=%.0f\n", row.Key[0], row.Count, row.Sums[0])
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
