// Recovery: a file-backed database with a maintained view survives a
// "crash". The first process loads data, checkpoints, writes more, and
// exits without ceremony; the second re-creates the catalog, restores the
// snapshot plus the log suffix, and the view picks up exactly where the
// committed state left off.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	rollingjoin "repro"
)

func main() {
	dir, err := os.MkdirTemp("", "rollingjoin-recovery")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	walPath := filepath.Join(dir, "db.wal")
	ckptPath := filepath.Join(dir, "snap.ckpt")

	firstLife(walPath, ckptPath)
	secondLife(walPath, ckptPath)
}

func catalog(db *rollingjoin.DB) {
	must(db.CreateTable("events",
		rollingjoin.Col("id", rollingjoin.TypeInt),
		rollingjoin.Col("kind", rollingjoin.TypeString)))
	must(db.CreateTable("kinds",
		rollingjoin.Col("kind", rollingjoin.TypeString),
		rollingjoin.Col("weight", rollingjoin.TypeInt)))
}

func firstLife(walPath, ckptPath string) {
	db, err := rollingjoin.Open(rollingjoin.Options{WALPath: walPath, SyncOnCommit: true})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	catalog(db)

	db.Update(func(tx *rollingjoin.Tx) error {
		tx.Insert("kinds", rollingjoin.Str("click"), rollingjoin.Int(1))
		tx.Insert("kinds", rollingjoin.Str("view"), rollingjoin.Int(2))
		return nil
	})
	view, err := db.DefineView(rollingjoin.ViewSpec{
		Name:   "weighted",
		Tables: []string{"events", "kinds"},
		Joins:  []rollingjoin.Join{{LeftTable: "events", LeftColumn: "kind", RightTable: "kinds", RightColumn: "kind"}},
	}, rollingjoin.Maintain{Interval: 4})
	if err != nil {
		log.Fatal(err)
	}

	for i := 0; i < 50; i++ {
		kind := "click"
		if i%3 == 0 {
			kind = "view"
		}
		db.Update(func(tx *rollingjoin.Tx) error {
			return tx.Insert("events", rollingjoin.Int(int64(i)), rollingjoin.Str(kind))
		})
	}
	if err := db.Checkpoint(ckptPath); err != nil {
		log.Fatal(err)
	}
	fmt.Println("first life: checkpoint written after 50 events")

	// Post-checkpoint writes live only in the log suffix.
	for i := 50; i < 70; i++ {
		db.Update(func(tx *rollingjoin.Tx) error {
			return tx.Insert("events", rollingjoin.Int(int64(i)), rollingjoin.Str("click"))
		})
	}
	last := db.LastCSN()
	view.WaitForHWM(last)
	view.Refresh()
	fmt.Printf("first life: view holds %d rows at commit %d — crash!\n", view.Cardinality(), view.MatTime())
}

func secondLife(walPath, ckptPath string) {
	db, err := rollingjoin.Open(rollingjoin.Options{WALPath: walPath})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	catalog(db)
	restored, err := db.Restore(ckptPath)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("second life: restored snapshot + log suffix through commit %d\n", restored)

	view, err := db.DefineView(rollingjoin.ViewSpec{
		Name:   "weighted",
		Tables: []string{"events", "kinds"},
		Joins:  []rollingjoin.Join{{LeftTable: "events", LeftColumn: "kind", RightTable: "kinds", RightColumn: "kind"}},
	}, rollingjoin.Maintain{Interval: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("second life: re-materialized view holds %d rows\n", view.Cardinality())

	// Maintenance continues seamlessly.
	last, _ := db.Update(func(tx *rollingjoin.Tx) error {
		return tx.Insert("events", rollingjoin.Int(999), rollingjoin.Str("view"))
	})
	view.WaitForHWM(last)
	view.Refresh()
	fmt.Printf("second life: after one more event the view holds %d rows ✓\n", view.Cardinality())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
