package rollingjoin

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/relalg"
	"repro/internal/wal"
)

// Crash-recovery property tests for the storage-tiering failpoint classes:
// a crash mid-fold (delta-prefix folding), mid-chain-link (incremental
// checkpoint publish), and mid-spill (cold spill write and reload). In
// every class the recovered view must equal a full recomputation — fold,
// chain, and spill all operate on reconstructible state, so no crash
// timing may lose a committed change.

// TestCrashRecoveryFold crashes inside the background fold job's step.
// Folding moves delta rows into in-memory derived images and prunes
// capture-side state; none of it is durable, so a crash at any fold
// boundary recovers exactly like a plain process kill.
func TestCrashRecoveryFold(t *testing.T) {
	for _, run := range []struct {
		hits int64
	}{{1}, {3}} {
		for _, seed := range []int64{1, 2} {
			t.Run(fmt.Sprintf("hit%d/seed%d", run.hits, seed), func(t *testing.T) {
				defer fault.Reset()
				ckpt := filepath.Join(t.TempDir(), "crash.ckpt")
				img, lastAcked, ckptOK := runCrashWorkload(t, fault.PointFold, run.hits, seed, 0, ckpt,
					func(o *Options) { o.FoldDeltas = true })
				recoverAndVerify(t, img, lastAcked, ckptOK, ckpt)
			})
		}
	}
}

// TestCrashRecoveryChainLink crashes during an incremental checkpoint's
// link publish — once before the link file is written (chain/write) and
// once between write and rename (chain/rename). Both must leave the chain
// directory a valid, restorable prefix: restore goes through the chain
// when it has links, and falls back to log-only recovery when the crash
// predates the first link.
func TestCrashRecoveryChainLink(t *testing.T) {
	runs := []struct {
		point string
		hits  int64
	}{
		{fault.PointChainWrite, 1},  // during the first (FULL) link
		{fault.PointChainWrite, 2},  // during the second (DELTA) link
		{fault.PointChainRename, 1}, // first link written but never published
		{fault.PointChainRename, 2}, // delta link written but never published
	}
	for _, run := range runs {
		for _, seed := range []int64{1, 2} {
			t.Run(fmt.Sprintf("%s/hit%d/seed%d", filepath.Base(run.point), run.hits, seed), func(t *testing.T) {
				defer fault.Reset()
				fault.Reset()
				chainDir := filepath.Join(t.TempDir(), "chain")
				fdev := fault.NewDevice(wal.NewMemDevice())
				db, err := Open(Options{Device: fdev, SyncOnCommit: true})
				if err != nil {
					t.Fatal(err)
				}
				crashCatalog(t, db)
				var lastAcked CSN
				if csn, err := db.Update(func(tx *Tx) error {
					for _, it := range crashItems {
						if err := tx.Insert("items", Str(it.name), Int(it.price)); err != nil {
							return err
						}
					}
					return nil
				}); err != nil {
					t.Fatal(err)
				} else {
					lastAcked = csn
				}
				if _, err := db.DefineView(orderPricesSpec(), Maintain{Interval: 4, AutoRefresh: true}); err != nil {
					t.Fatal(err)
				}
				fault.Set(run.point, fault.CrashOnHit(run.hits, fdev))

				rng := rand.New(rand.NewSource(seed))
				for i := 0; i < 60 && !fdev.Frozen(); i++ {
					if i > 0 && i%12 == 0 {
						// The armed point fires inside one of these calls.
						_ = db.CheckpointIncremental(chainDir)
					}
					id := int64(i)
					item := crashItems[rng.Intn(len(crashItems))].name
					var csn CSN
					if i > 5 && rng.Intn(4) == 0 {
						csn, err = db.Update(func(tx *Tx) error {
							_, derr := tx.Delete("orders", "id", EQ, Int(id-3), 1)
							return derr
						})
					} else {
						csn, err = db.Update(func(tx *Tx) error { return tx.Insert("orders", Int(id), Str(item)) })
					}
					if err != nil {
						break
					}
					lastAcked = csn
				}
				if !fdev.Frozen() {
					t.Fatalf("failpoint %s never fired (%d evals)", run.point, fault.Evals(run.point))
				}
				img, err := fdev.CrashImage(0)
				if err != nil {
					t.Fatal(err)
				}
				fault.Reset()
				db.Close()

				// The chain directory must hold a structurally valid chain
				// regardless of where the crash landed.
				links, err := readChainDir(chainDir)
				if err != nil {
					t.Fatalf("chain invalid after crash: %v", err)
				}

				db2, err := Open(Options{Device: wal.NewMemDeviceFrom(img), SyncOnCommit: true})
				if err != nil {
					t.Fatalf("reopen from crash image: %v", err)
				}
				defer db2.Close()
				crashCatalog(t, db2)
				var recovered CSN
				if len(links) > 0 {
					recovered, err = db2.RestoreChain(chainDir)
				} else {
					recovered, err = db2.Recover()
				}
				if err != nil {
					t.Fatalf("recovery (links=%d): %v", len(links), err)
				}
				if recovered < lastAcked {
					t.Fatalf("recovered CSN %d lost acked commit %d", recovered, lastAcked)
				}
				view, err := db2.DefineView(orderPricesSpec(), Maintain{Interval: 4})
				if err != nil {
					t.Fatal(err)
				}
				if err := view.CatchUp(db2.LastCSN()); err != nil {
					t.Fatal(err)
				}
				if _, err := view.Refresh(); err != nil && !errors.Is(err, ErrBackward) {
					t.Fatal(err)
				}
				full, err := db2.Query(orderPricesSpec())
				if err != nil {
					t.Fatal(err)
				}
				if got, want := multiset(view.Rows()), multiset(full.Rows); !multisetsEqual(got, want) {
					t.Fatalf("view diverged from recomputation after chain crash:\n view: %v\n full: %v", got, want)
				}
				// And the chain keeps extending after recovery.
				if err := db2.CheckpointIncremental(chainDir); err != nil {
					t.Fatalf("post-recovery incremental checkpoint: %v", err)
				}
			})
		}
	}
}

// TestCrashRecoverySpill covers the cold-spill failpoint classes. Spill
// files are process-lifetime cache state, never part of durability, so a
// crash during a spill write (background sweep) or during a cold reload
// must recover to exactly the recomputed view from the log alone.
func TestCrashRecoverySpill(t *testing.T) {
	t.Run("write", func(t *testing.T) {
		// Crash inside the background sweep's serialization. Folding is on
		// so the view's derived image is non-empty (folded delta prefix)
		// and becomes spillable once the workload quiets down.
		defer fault.Reset()
		ckpt := filepath.Join(t.TempDir(), "crash.ckpt")
		spillDir := t.TempDir()
		img, lastAcked, ckptOK := runCrashWorkload(t, fault.PointSpillWrite, 1, 1, 0, ckpt,
			func(o *Options) {
				o.FoldDeltas = true
				o.SpillDir = spillDir
				o.SpillAfter = 5 * time.Millisecond
			})
		recoverAndVerify(t, img, lastAcked, ckptOK, ckpt)
	})

	t.Run("load", func(t *testing.T) {
		// Deterministic: spill a manual view's image, then crash inside the
		// cold reload triggered by the next read.
		defer fault.Reset()
		fault.Reset()
		fdev := fault.NewDevice(wal.NewMemDevice())
		db, err := Open(Options{
			Device: fdev, SyncOnCommit: true,
			SpillDir: t.TempDir(), SpillAfter: time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		crashCatalog(t, db)
		var lastAcked CSN
		if csn, err := db.Update(func(tx *Tx) error {
			for _, it := range crashItems {
				if err := tx.Insert("items", Str(it.name), Int(it.price)); err != nil {
					return err
				}
			}
			for i := 0; i < 20; i++ {
				if err := tx.Insert("orders", Int(int64(i)), Str(crashItems[i%3].name)); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		} else {
			lastAcked = csn
		}
		if _, err := db.DefineView(orderPricesSpec(), Maintain{Interval: 4, Manual: true}); err != nil {
			t.Fatal(err)
		}
		// Wait out the idleness window, then sweep until the image spills.
		deadline := time.Now().Add(5 * time.Second)
		for db.Engine().Stats().SpilledBytes == 0 {
			if time.Now().After(deadline) {
				t.Fatal("view image never spilled")
			}
			time.Sleep(2 * time.Millisecond)
			if _, err := db.Spill(); err != nil {
				t.Fatal(err)
			}
		}
		// The next derived read must reload — crash there.
		fault.Set(fault.PointSpillLoad, fault.CrashOnHit(1, fdev))
		dv, err := db.Engine().Derived("order_prices")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := dv.ScanAsOf(relalg.NullTS, nil); err == nil {
			t.Fatal("cold reload should fail at the armed failpoint")
		}
		if !fdev.Frozen() {
			t.Fatal("spill/load failpoint never froze the device")
		}
		img, err := fdev.CrashImage(0)
		if err != nil {
			t.Fatal(err)
		}
		fault.Reset()
		db.Close()
		recoverAndVerify(t, img, lastAcked, false, "")
	})
}
