package rollingjoin

import (
	"fmt"
	"math"
	"os"
	"time"

	"repro/internal/capture"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/sched"
)

// maxFoldCSN is the no-ceiling limit for foldTo: PruneApplied's classic
// behavior, floored only by materialization times and downstream readers.
const maxFoldCSN = CSN(math.MaxInt64)

// Fold runs one delta-prefix fold pass synchronously: every view's and
// aggregate's delta prefix below the storage horizon (open snapshots,
// ledger pins, downstream readers, materialization times) folds into its
// derived image, base-table delta prefixes no reader can reach are
// discarded, dead row versions are collected, and the unit-of-work table
// prefix below every materialization time is dropped. With background
// folding enabled (Options.FoldDeltas) the pass serializes with the
// scheduled fold job. A pass with nothing to reclaim is not an error.
func (db *DB) Fold() error {
	var err error
	if db.fold != nil && db.fold.Running() {
		err = db.fold.StepNow()
	} else {
		err = db.foldStep()
	}
	if err == core.ErrNoProgress {
		return nil
	}
	return err
}

// foldStep is the fold job's step function. One pass:
//
//  1. Compute the fold floor from the engine's horizon ledger — the
//     minimum of the stable CSN, every open snapshot, and every named pin
//     (incremental checkpoints pin their chain tail here).
//  2. Fold each view/aggregate to min(floor, its MatTime, downstream
//     HWMs) via foldTo, which compacts the derived image before pruning
//     the delta rows it covered.
//  3. Prune base-table delta prefixes to min(floor, referencing views'
//     HWMs) — including deltas no view references at all.
//  4. Collect dead row versions below min(floor, every MatTime) — the
//     same ceiling bounds the version-GC horizon so a lagging subscriber
//     can still open compensation snapshots at its old HWM — and drop
//     the unit-of-work prefix below it, bounding capture-side memory.
//
// It reports core.ErrNoProgress (→ scheduler Idle) when the pass
// reclaimed nothing, so the low-priority job sleeps until the next
// capture notification.
func (db *DB) foldStep() error {
	if err := fault.Inject(fault.PointFold); err != nil {
		return err
	}
	floor := db.eng.Horizons().Floor()

	db.mu.Lock()
	views := make([]*View, 0, len(db.views))
	for _, v := range db.views {
		views = append(views, v)
	}
	aggs := make([]*AggregateView, 0, len(db.aggs))
	for _, a := range db.aggs {
		aggs = append(aggs, a)
	}
	db.mu.Unlock()

	reclaimed := 0
	matFloor := floor
	for _, v := range views {
		reclaimed += v.foldTo(floor)
		if t := v.MatTime(); t < matFloor {
			matFloor = t
		}
	}
	for _, a := range aggs {
		reclaimed += a.foldTo(floor)
		if t := a.MatTime(); t < matFloor {
			matFloor = t
		}
	}
	reclaimed += db.pruneBaseDeltasTo(floor, true)

	collected, _ := db.eng.GCVersionsBelow(matFloor)

	// The unit-of-work prefix is dead once no refresh target can land
	// there: every view has rolled past it and no snapshot or pin reads
	// below it. Reach the table without ensureCapture — the fold job must
	// not start log capture on a freshly reopened database that still
	// needs Recover.
	pruned := 0
	var uow *capture.UnitOfWork
	if db.logCap != nil {
		uow = db.logCap.UOW()
	} else if db.trigCap != nil {
		uow = db.trigCap.UOW()
	}
	if uow != nil {
		pruned = uow.PruneThrough(matFloor)
	}

	if reclaimed == 0 && collected == 0 && pruned == 0 {
		return core.ErrNoProgress
	}
	db.eng.NoteFold(int64(reclaimed))
	return nil
}

// pruneBaseDeltasTo prunes each base table's delta rows at or below
// min(limit, lowest HWM of the views referencing it). With all set,
// deltas referenced by no view prune straight to limit (safe: a future
// view materializes at definition time and reads only windows above it).
func (db *DB) pruneBaseDeltasTo(limit CSN, all bool) int {
	db.mu.Lock()
	// Collect, per input relation, the lowest HWM across referencing views.
	safe := make(map[string]CSN)
	acc := func(rels []string, hwm CSN) {
		for _, rel := range rels {
			if cur, ok := safe[rel]; !ok || hwm < cur {
				safe[rel] = hwm
			}
		}
	}
	for _, v := range db.views {
		acc(v.def.Relations, v.hwm())
	}
	for _, a := range db.aggs {
		acc([]string{a.source}, a.hwm())
	}
	db.mu.Unlock()
	if all {
		for _, t := range db.eng.TableNames() {
			if _, ok := safe[t]; !ok {
				safe[t] = limit
			}
		}
	}
	pruned := 0
	for table, hwm := range safe {
		if db.eng.IsDerived(table) {
			// A maintained view's own delta doubles as its readable state;
			// it is pruned through View.PruneApplied, which compacts the
			// derived image with downstream-aware flooring first.
			continue
		}
		if hwm > limit {
			hwm = limit
		}
		d, err := db.eng.Delta(table)
		if err != nil {
			continue
		}
		pruned += d.PruneThrough(hwm)
	}
	return pruned
}

// spillStep is the cold-spill job's step function: serialize derived
// images and join-cache partitions untouched since the idleness cutoff to
// the spill directory, dropping the in-memory copies. Reports
// core.ErrNoProgress when nothing was cold.
func (db *DB) spillStep() error {
	n, err := db.eng.SpillIdle(db.spillDir, time.Now().Add(-db.spillAfter))
	if err != nil {
		return err
	}
	if n == 0 {
		return core.ErrNoProgress
	}
	return nil
}

// Spill runs one cold-spill sweep synchronously (tests and experiments;
// the background ticker drives it otherwise). It returns the number of
// structures spilled.
func (db *DB) Spill() (int, error) {
	if db.spillDir == "" {
		return 0, fmt.Errorf("rollingjoin: spilling not enabled (Options.SpillDir)")
	}
	if db.spill != nil && db.spill.Running() {
		err := db.spill.StepNow()
		if err == core.ErrNoProgress {
			err = nil
		}
		// StepNow doesn't surface the count; report via stats instead.
		return 0, err
	}
	n, err := db.eng.SpillIdle(db.spillDir, time.Now().Add(-db.spillAfter))
	return n, err
}

// startTiering registers the storage-tiering maintenance jobs per the
// options: a fold job woken by capture notifications and a spill sweep
// kicked by a wall-clock ticker, both on the scheduler's low-priority
// queue so they never delay propagation or apply.
func (db *DB) startTiering(opts Options) error {
	if opts.FoldDeltas {
		db.fold = db.sched.Register("tier:fold", db.foldStep, sched.Options{
			Classify:     classifyMaintenance,
			WakeOnNotify: true,
			LowPriority:  true,
		})
		db.fold.Start()
	}
	if opts.SpillDir != "" {
		if err := os.MkdirAll(opts.SpillDir, 0o755); err != nil {
			return err
		}
		// A per-process subdirectory: spill files are process-lifetime
		// state (a reopened database rebuilds from the log/checkpoint), so
		// a unique subdir guarantees a stale file from a previous process
		// can never satisfy a load.
		sub, err := os.MkdirTemp(opts.SpillDir, "spill-*")
		if err != nil {
			return err
		}
		db.spillDir = sub
		db.spillAfter = opts.SpillAfter
		if db.spillAfter <= 0 {
			db.spillAfter = time.Minute
		}
		db.spill = db.sched.Register("tier:spill", db.spillStep, sched.Options{
			Classify:    classifyMaintenance,
			LowPriority: true,
		})
		db.spill.Start()
		db.spillStop = make(chan struct{})
		db.spillWg.Add(1)
		go func() {
			defer db.spillWg.Done()
			tick := time.NewTicker(db.spillAfter)
			defer tick.Stop()
			for {
				select {
				case <-db.spillStop:
					return
				case <-tick.C:
					db.spill.Kick()
				}
			}
		}()
	}
	return nil
}

// stopTiering halts the spill ticker (Close). The jobs themselves drain
// with the scheduler.
func (db *DB) stopTiering() {
	if db.spillStop != nil {
		close(db.spillStop)
		db.spillWg.Wait()
		db.spillStop = nil
	}
	if db.spillDir != "" {
		os.RemoveAll(db.spillDir)
	}
}
