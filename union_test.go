package rollingjoin

import (
	"testing"
)

func TestUnionViewFacade(t *testing.T) {
	db := newTestDB(t, Options{})
	// Two branches over the same output shape: cheap orders and pricey
	// orders, partitioned by price.
	branch := func(name string, op CmpOp) ViewSpec {
		return ViewSpec{
			Name:    name,
			Tables:  []string{"orders", "items"},
			Joins:   []Join{{"orders", "item", "items", "item"}},
			Filters: []Filter{{Table: "items", Column: "price", Op: op, Value: Int(10)}},
			Output:  []OutCol{{"orders", "id"}, {"items", "price"}},
		}
	}
	uv, err := db.DefineUnionView("all_orders", []ViewSpec{branch("cheap", LT), branch("pricey", GE)}, Maintain{Interval: 4})
	if err != nil {
		t.Fatal(err)
	}
	if uv.Name() != "all_orders" {
		t.Fatal("name")
	}

	db.Update(func(tx *Tx) error {
		tx.Insert("items", Str("ball"), Int(5))
		tx.Insert("items", Str("bat"), Int(20))
		return nil
	})
	var last CSN
	for i := 0; i < 8; i++ {
		item := "ball"
		if i%2 == 1 {
			item = "bat"
		}
		last, _ = db.Update(func(tx *Tx) error {
			return tx.Insert("orders", Int(int64(i)), Str(item))
		})
	}
	uv.WaitForHWM(last)
	reached, err := uv.Refresh()
	if err != nil || reached < last {
		t.Fatalf("refresh: %d %v", reached, err)
	}
	if uv.Cardinality() != 8 {
		t.Fatalf("union rows: %d", uv.Cardinality())
	}
	rows := uv.Rows()
	if len(rows) != 8 || len(rows[0]) != 2 {
		t.Fatalf("rows shape: %d", len(rows))
	}
	if uv.MatTime() != reached {
		t.Fatal("mat time")
	}
}

func TestUnionViewManualAndPointInTime(t *testing.T) {
	db := newTestDB(t, Options{})
	spec := func(name string) ViewSpec {
		return ViewSpec{
			Name:   name,
			Tables: []string{"orders", "items"},
			Joins:  []Join{{"orders", "item", "items", "item"}},
			Output: []OutCol{{"orders", "id"}, {"items", "price"}},
		}
	}
	// A degenerate single-branch union still works.
	uv, err := db.DefineUnionView("u", []ViewSpec{spec("only")}, Maintain{Interval: 4, Manual: true})
	if err != nil {
		t.Fatal(err)
	}
	db.Update(func(tx *Tx) error { return tx.Insert("items", Str("ball"), Int(5)) })
	mid, _ := db.Update(func(tx *Tx) error { return tx.Insert("orders", Int(1), Str("ball")) })
	last, _ := db.Update(func(tx *Tx) error { return tx.Insert("orders", Int(2), Str("ball")) })
	for uv.HWM() < last {
		if err := uv.PropagateStep(); err != nil && err.Error() != "core: no captured changes to propagate" {
			t.Fatal(err)
		}
	}
	if err := uv.RefreshTo(mid); err != nil {
		t.Fatal(err)
	}
	if uv.Cardinality() != 1 {
		t.Fatalf("at mid: %d", uv.Cardinality())
	}
	if err := uv.RefreshTo(last); err != nil {
		t.Fatal(err)
	}
	if uv.Cardinality() != 2 {
		t.Fatalf("at last: %d", uv.Cardinality())
	}
	// Restartable propagation.
	uv.StartPropagation()
	uv.StartPropagation()
	if err := uv.StopPropagation(); err != nil {
		t.Fatal(err)
	}
	if err := uv.StopPropagation(); err != nil {
		t.Fatal(err)
	}
}

func TestUnionViewValidationFacade(t *testing.T) {
	db := newTestDB(t, Options{})
	if _, err := db.DefineUnionView("u", nil, Maintain{}); err == nil {
		t.Fatal("no branches should fail")
	}
	a := ViewSpec{Name: "a", Tables: []string{"orders", "items"},
		Joins:  []Join{{"orders", "item", "items", "item"}},
		Output: []OutCol{{"orders", "id"}}}
	b := ViewSpec{Name: "b", Tables: []string{"orders", "items"},
		Joins: []Join{{"orders", "item", "items", "item"}}}
	if _, err := db.DefineUnionView("u", []ViewSpec{a, b}, Maintain{Manual: true}); err == nil {
		t.Fatal("arity mismatch should fail")
	}
}

func TestPruneBaseDeltas(t *testing.T) {
	db := newTestDB(t, Options{})
	view, err := db.DefineView(orderPricesSpec(), Maintain{Interval: 4})
	if err != nil {
		t.Fatal(err)
	}
	db.Update(func(tx *Tx) error { return tx.Insert("items", Str("ball"), Int(5)) })
	var last CSN
	for i := 0; i < 12; i++ {
		last, _ = db.Update(func(tx *Tx) error {
			return tx.Insert("orders", Int(int64(i)), Str("ball"))
		})
	}
	view.WaitForHWM(last)
	d, _ := db.Engine().Delta("orders")
	before := d.Len()
	if before == 0 {
		t.Fatal("expected captured deltas")
	}
	pruned := db.PruneBaseDeltas()
	if pruned == 0 {
		t.Fatal("expected pruning")
	}
	if d.Len() >= before {
		t.Fatal("orders delta not shrunk")
	}
	// Maintenance continues to work after pruning.
	last, _ = db.Update(func(tx *Tx) error { return tx.Insert("orders", Int(99), Str("ball")) })
	view.WaitForHWM(last)
	if _, err := view.Refresh(); err != nil {
		t.Fatal(err)
	}
	if view.Cardinality() != 13 {
		t.Fatalf("rows after prune: %d", view.Cardinality())
	}
}
