package rollingjoin

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// newTestDB opens a database preloaded with an orders/items pair of tables.
func newTestDB(t *testing.T, opts Options) *DB {
	t.Helper()
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	if err := db.CreateTable("orders", Col("id", TypeInt), Col("item", TypeString)); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable("items", Col("item", TypeString), Col("price", TypeInt)); err != nil {
		t.Fatal(err)
	}
	return db
}

func orderPricesSpec() ViewSpec {
	return ViewSpec{
		Name:   "order_prices",
		Tables: []string{"orders", "items"},
		Joins:  []Join{{"orders", "item", "items", "item"}},
	}
}

func TestQuickstartFlow(t *testing.T) {
	db := newTestDB(t, Options{})
	if _, err := db.Update(func(tx *Tx) error {
		if err := tx.Insert("items", Str("ball"), Int(5)); err != nil {
			return err
		}
		return tx.Insert("items", Str("bat"), Int(20))
	}); err != nil {
		t.Fatal(err)
	}

	view, err := db.DefineView(orderPricesSpec(), Maintain{Interval: 4})
	if err != nil {
		t.Fatal(err)
	}
	if view.Cardinality() != 0 {
		t.Fatal("no orders yet")
	}

	var last CSN
	for i := 0; i < 10; i++ {
		item := "ball"
		if i%2 == 1 {
			item = "bat"
		}
		csn, err := db.Update(func(tx *Tx) error {
			return tx.Insert("orders", Int(int64(i)), Str(item))
		})
		if err != nil {
			t.Fatal(err)
		}
		last = csn
	}
	view.WaitForHWM(last)
	reached, err := view.Refresh()
	if err != nil || reached < last {
		t.Fatalf("refresh: %d %v", reached, err)
	}
	if view.Cardinality() != 10 {
		t.Fatalf("view rows %d", view.Cardinality())
	}
	rows := view.Rows()
	if len(rows) != 10 || len(rows[0]) != 4 {
		t.Fatalf("rows shape: %d x %d", len(rows), len(rows[0]))
	}
	st := view.Stats()
	if st.ForwardQueries == 0 || st.MatTime != reached {
		t.Fatalf("stats: %+v", st)
	}
}

func TestViewSpecValidation(t *testing.T) {
	db := newTestDB(t, Options{})
	cases := []ViewSpec{
		{Name: "", Tables: []string{"orders"}},
		{Name: "dupe", Tables: []string{"orders", "orders"}},
		{Name: "badtable", Tables: []string{"orders", "missing"}},
		{Name: "badjoin", Tables: []string{"orders", "items"},
			Joins: []Join{{"orders", "nope", "items", "item"}}},
		{Name: "outsider", Tables: []string{"orders", "items"},
			Joins: []Join{{"orders", "item", "elsewhere", "item"}}},
		{Name: "badout", Tables: []string{"orders", "items"},
			Output: []OutCol{{"orders", "missing"}}},
	}
	for _, spec := range cases {
		if _, err := db.DefineView(spec, Maintain{Manual: true}); err == nil {
			t.Fatalf("spec %q should fail", spec.Name)
		}
	}
	// Valid one, then a duplicate name.
	if _, err := db.DefineView(orderPricesSpec(), Maintain{Manual: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.DefineView(orderPricesSpec(), Maintain{Manual: true}); err == nil {
		t.Fatal("duplicate view name should fail")
	}
	if _, ok := db.View("order_prices"); !ok {
		t.Fatal("lookup")
	}
	if _, ok := db.View("missing"); ok {
		t.Fatal("phantom view")
	}
}

func TestFiltersAndProjection(t *testing.T) {
	db := newTestDB(t, Options{})
	view, err := db.DefineView(ViewSpec{
		Name:    "cheap",
		Tables:  []string{"orders", "items"},
		Joins:   []Join{{"orders", "item", "items", "item"}},
		Filters: []Filter{{"items", "price", LT, Int(10)}},
		Output:  []OutCol{{"orders", "id"}, {"items", "price"}},
	}, Maintain{Interval: 2})
	if err != nil {
		t.Fatal(err)
	}
	db.Update(func(tx *Tx) error {
		tx.Insert("items", Str("ball"), Int(5))
		tx.Insert("items", Str("bat"), Int(20))
		return nil
	})
	last, _ := db.Update(func(tx *Tx) error {
		tx.Insert("orders", Int(1), Str("ball"))
		tx.Insert("orders", Int(2), Str("bat"))
		return nil
	})
	view.WaitForHWM(last)
	if _, err := view.Refresh(); err != nil {
		t.Fatal(err)
	}
	rows := view.Rows()
	if len(rows) != 1 || rows[0][0].AsInt() != 1 || rows[0][1].AsInt() != 5 {
		t.Fatalf("filtered rows: %v", rows)
	}
}

func TestPointInTimeRefresh(t *testing.T) {
	db := newTestDB(t, Options{})
	view, err := db.DefineView(orderPricesSpec(), Maintain{Interval: 3, Manual: true})
	if err != nil {
		t.Fatal(err)
	}
	db.Update(func(tx *Tx) error { return tx.Insert("items", Str("ball"), Int(5)) })
	mid, _ := db.Update(func(tx *Tx) error { return tx.Insert("orders", Int(1), Str("ball")) })
	last, _ := db.Update(func(tx *Tx) error { return tx.Insert("orders", Int(2), Str("ball")) })

	for view.HWM() < last {
		if err := view.PropagateStep(); err != nil && !errors.Is(err, core.ErrNoProgress) {
			t.Fatal(err)
		}
	}
	// Roll to the intermediate point: exactly one order visible.
	if err := view.RefreshTo(mid); err != nil {
		t.Fatal(err)
	}
	if view.Cardinality() != 1 {
		t.Fatalf("at mid: %d rows", view.Cardinality())
	}
	// Backward refresh is refused.
	if err := view.RefreshTo(mid - 1); !errors.Is(err, ErrBackward) {
		t.Fatalf("want ErrBackward, got %v", err)
	}
	// Beyond the HWM is refused.
	if err := view.RefreshTo(view.HWM() + 50); !errors.Is(err, ErrBeyondHWM) {
		t.Fatalf("want ErrBeyondHWM, got %v", err)
	}
	// Forward to the end.
	if err := view.RefreshTo(last); err != nil {
		t.Fatal(err)
	}
	if view.Cardinality() != 2 {
		t.Fatalf("at last: %d rows", view.Cardinality())
	}
	if pruned := view.PruneApplied(); pruned == 0 {
		t.Fatal("prune should drop applied rows")
	}
}

func TestRefreshToTime(t *testing.T) {
	db := newTestDB(t, Options{})
	view, err := db.DefineView(orderPricesSpec(), Maintain{Interval: 4, Manual: true})
	if err != nil {
		t.Fatal(err)
	}
	db.Update(func(tx *Tx) error { return tx.Insert("items", Str("ball"), Int(5)) })
	db.Update(func(tx *Tx) error { return tx.Insert("orders", Int(1), Str("ball")) })
	midWall := time.Now()
	time.Sleep(2 * time.Millisecond)
	last, _ := db.Update(func(tx *Tx) error { return tx.Insert("orders", Int(2), Str("ball")) })

	for view.HWM() < last {
		if err := view.PropagateStep(); err != nil && !errors.Is(err, core.ErrNoProgress) {
			t.Fatal(err)
		}
	}
	csn, err := view.RefreshToTime(midWall)
	if err != nil {
		t.Fatal(err)
	}
	if csn >= last {
		t.Fatalf("csn %d should precede %d", csn, last)
	}
	if view.Cardinality() != 1 {
		t.Fatalf("state at %v: %d rows", midWall, view.Cardinality())
	}
	if _, err := view.RefreshToTime(time.Now().Add(-time.Hour)); err == nil {
		t.Fatal("ancient target should fail")
	}
}

func TestAdaptiveMaintainOption(t *testing.T) {
	db := newTestDB(t, Options{})
	view, err := db.DefineView(orderPricesSpec(), Maintain{AdaptiveTargetRows: 8})
	if err != nil {
		t.Fatal(err)
	}
	db.Update(func(tx *Tx) error { return tx.Insert("items", Str("ball"), Int(5)) })
	var last CSN
	for i := 0; i < 20; i++ {
		last, _ = db.Update(func(tx *Tx) error {
			return tx.Insert("orders", Int(int64(i)), Str("ball"))
		})
	}
	view.WaitForHWM(last)
	if _, err := view.Refresh(); err != nil {
		t.Fatal(err)
	}
	if view.Cardinality() != 20 {
		t.Fatalf("adaptive view rows: %d", view.Cardinality())
	}
}

func TestStepwiseAlgorithm(t *testing.T) {
	db := newTestDB(t, Options{})
	view, err := db.DefineView(orderPricesSpec(), Maintain{Algorithm: AlgorithmStepwise, Interval: 2})
	if err != nil {
		t.Fatal(err)
	}
	if view.TFwd() != nil {
		t.Fatal("stepwise has no per-relation progress")
	}
	db.Update(func(tx *Tx) error { return tx.Insert("items", Str("ball"), Int(5)) })
	last, _ := db.Update(func(tx *Tx) error { return tx.Insert("orders", Int(1), Str("ball")) })
	view.WaitForHWM(last)
	if _, err := view.Refresh(); err != nil {
		t.Fatal(err)
	}
	if view.Cardinality() != 1 {
		t.Fatal("stepwise view content")
	}
}

func TestTriggerCaptureMode(t *testing.T) {
	db := newTestDB(t, Options{Capture: CaptureTrigger})
	view, err := db.DefineView(orderPricesSpec(), Maintain{Interval: 4, Manual: true})
	if err != nil {
		t.Fatal(err)
	}
	db.Update(func(tx *Tx) error { return tx.Insert("items", Str("ball"), Int(5)) })
	last, _ := db.Update(func(tx *Tx) error { return tx.Insert("orders", Int(1), Str("ball")) })
	for view.HWM() < last {
		if err := view.PropagateStep(); err != nil && !errors.Is(err, core.ErrNoProgress) {
			t.Fatal(err)
		}
	}
	if _, err := view.Refresh(); err != nil {
		t.Fatal(err)
	}
	if view.Cardinality() != 1 {
		t.Fatal("trigger-mode view content")
	}
}

func TestFileBackedWAL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.wal")
	db, err := Open(Options{WALPath: path, SyncOnCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable("t", Col("k", TypeInt)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Update(func(tx *Tx) error { return tx.Insert("t", Int(1)) }); err != nil {
		t.Fatal(err)
	}
	db.Close()
	// Reopen: re-create the catalog, then the capture process replays the
	// log into the delta table (it starts lazily, after the catalog exists).
	db2, err := Open(Options{WALPath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if err := db2.CreateTable("t", Col("k", TypeInt)); err != nil {
		t.Fatal(err)
	}
	if err := db2.Source().WaitProgress(1); err != nil {
		t.Fatal(err)
	}
	d, err := db2.Engine().Delta("t")
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 1 {
		t.Fatalf("replayed delta rows: %d", d.Len())
	}
}

// TestCrashRecoveryEndToEnd closes a file-backed database mid-life, reopens
// it, replays the log with Recover, and verifies base tables, the CSN
// sequence, and freshly defined views all match the pre-crash state.
func TestCrashRecoveryEndToEnd(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.wal")
	catalog := func(db *DB) {
		if err := db.CreateTable("orders", Col("id", TypeInt), Col("item", TypeString)); err != nil {
			t.Fatal(err)
		}
		if err := db.CreateTable("items", Col("item", TypeString), Col("price", TypeInt)); err != nil {
			t.Fatal(err)
		}
		if err := db.CreateIndex("items", "item"); err != nil {
			t.Fatal(err)
		}
	}

	db, err := Open(Options{WALPath: path, SyncOnCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	catalog(db)
	var lastCSN CSN
	db.Update(func(tx *Tx) error {
		tx.Insert("items", Str("ball"), Int(5))
		tx.Insert("items", Str("bat"), Int(20))
		return nil
	})
	for i := 0; i < 10; i++ {
		item := "ball"
		if i%2 == 1 {
			item = "bat"
		}
		lastCSN, _ = db.Update(func(tx *Tx) error {
			return tx.Insert("orders", Int(int64(i)), Str(item))
		})
	}
	db.Update(func(tx *Tx) error {
		_, err := tx.Delete("orders", "id", EQ, Int(0), 0)
		return err
	})
	db.Close()

	db2, err := Open(Options{WALPath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	catalog(db2)
	recovered, err := db2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if recovered <= lastCSN {
		t.Fatalf("recovered csn %d, want > %d", recovered, lastCSN)
	}
	// New commits continue the sequence.
	csn, _ := db2.Update(func(tx *Tx) error { return tx.Insert("orders", Int(99), Str("ball")) })
	if csn != recovered+1 {
		t.Fatalf("csn after recovery: %d, want %d", csn, recovered+1)
	}
	// Base state: 10 - 1 + 1 orders.
	var rows []Tuple
	db2.Update(func(tx *Tx) error {
		var err error
		rows, err = tx.Scan("orders")
		return err
	})
	if len(rows) != 10 {
		t.Fatalf("orders after recovery: %d", len(rows))
	}
	// A view defined post-recovery materializes correctly and maintains
	// from there.
	view, err := db2.DefineView(orderPricesSpec(), Maintain{Interval: 4})
	if err != nil {
		t.Fatal(err)
	}
	if view.Cardinality() != 10 {
		t.Fatalf("view after recovery: %d", view.Cardinality())
	}
	final, _ := db2.Update(func(tx *Tx) error { return tx.Insert("orders", Int(100), Str("bat")) })
	view.WaitForHWM(final)
	if _, err := view.Refresh(); err != nil {
		t.Fatal(err)
	}
	if view.Cardinality() != 11 {
		t.Fatalf("view after post-recovery update: %d", view.Cardinality())
	}
}

func TestDeleteAndScan(t *testing.T) {
	db := newTestDB(t, Options{})
	db.Update(func(tx *Tx) error {
		for i := 0; i < 5; i++ {
			tx.Insert("orders", Int(int64(i)), Str("x"))
		}
		return nil
	})
	if _, err := db.Update(func(tx *Tx) error {
		n, err := tx.Delete("orders", "id", LE, Int(2), 0)
		if err != nil {
			return err
		}
		if n != 3 {
			return fmt.Errorf("deleted %d", n)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	var rows []Tuple
	db.Update(func(tx *Tx) error {
		var err error
		rows, err = tx.Scan("orders")
		return err
	})
	if len(rows) != 2 {
		t.Fatalf("remaining %d", len(rows))
	}
	if _, err := db.Update(func(tx *Tx) error {
		_, err := tx.Delete("orders", "ghost", EQ, Int(0), 0)
		return err
	}); err == nil {
		t.Fatal("bad column should fail")
	}
}

func TestStopAndRestartPropagation(t *testing.T) {
	db := newTestDB(t, Options{})
	view, err := db.DefineView(orderPricesSpec(), Maintain{Interval: 2})
	if err != nil {
		t.Fatal(err)
	}
	db.Update(func(tx *Tx) error { return tx.Insert("items", Str("ball"), Int(5)) })
	if err := view.StopPropagation(); err != nil {
		t.Fatal(err)
	}
	if err := view.StopPropagation(); err != nil {
		t.Fatal("double stop should be a no-op")
	}
	// While suspended, updates accumulate but the HWM freezes.
	frozen := view.HWM()
	last, _ := db.Update(func(tx *Tx) error { return tx.Insert("orders", Int(1), Str("ball")) })
	time.Sleep(10 * time.Millisecond)
	if view.HWM() != frozen {
		t.Fatal("hwm moved while suspended")
	}
	view.StartPropagation()
	view.StartPropagation() // idempotent
	view.WaitForHWM(last)
	if _, err := view.Refresh(); err != nil {
		t.Fatal(err)
	}
	if view.Cardinality() != 1 {
		t.Fatal("content after restart")
	}
}

// TestConcurrentWritersWithBackgroundMaintenance is the end-to-end smoke
// test: several writer goroutines, background propagation, periodic
// refreshes, and a final consistency check against a full recompute.
func TestConcurrentWritersWithBackgroundMaintenance(t *testing.T) {
	db := newTestDB(t, Options{})
	db.Update(func(tx *Tx) error {
		tx.Insert("items", Str("ball"), Int(5))
		tx.Insert("items", Str("bat"), Int(20))
		tx.Insert("items", Str("cap"), Int(9))
		return nil
	})
	view, err := db.DefineView(orderPricesSpec(), Maintain{Interval: 8})
	if err != nil {
		t.Fatal(err)
	}

	items := []string{"ball", "bat", "cap"}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var last CSN
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 50; i++ {
				id := int64(w*1000 + i)
				csn, err := db.Update(func(tx *Tx) error {
					if r.Intn(4) == 0 {
						_, err := tx.Delete("orders", "id", EQ, Int(id-2), 1)
						return err
					}
					return tx.Insert("orders", Int(id), Str(items[r.Intn(3)]))
				})
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				if csn > last {
					last = csn
				}
				mu.Unlock()
				if i%10 == 0 {
					view.Refresh() // concurrent applies are fine
				}
			}
		}(w)
	}
	wg.Wait()
	view.WaitForHWM(last)
	reached, err := view.Refresh()
	if err != nil || reached < last {
		t.Fatalf("final refresh: %d %v", reached, err)
	}

	// Oracle: full recompute must match the incrementally maintained state
	// rolled to the recompute's commit time.
	full, csn, err := core.FullRefresh(db.Engine(), viewDef(view))
	if err != nil {
		t.Fatal(err)
	}
	view.WaitForHWM(csn)
	if err := view.RefreshTo(csn); err != nil {
		t.Fatal(err)
	}
	got := view.Relation()
	if got.Len() != full.Len() {
		t.Fatalf("view has %d distinct tuples, recompute has %d", got.Len(), full.Len())
	}
	for i := range got.Rows {
		if got.Rows[i].Count != full.Rows[i].Count || !got.Rows[i].Tuple.Equal(full.Rows[i].Tuple) {
			t.Fatalf("row %d differs", i)
		}
	}
}

// viewDef reaches into the view for its core definition (test helper; the
// facade does not export it).
func viewDef(v *View) *core.ViewDef { return v.def }

// TestMultipleViewsShareTables maintains several views with different
// shapes over the same base tables, concurrently with writers, and checks
// each against recomputation.
func TestMultipleViewsShareTables(t *testing.T) {
	db := newTestDB(t, Options{})
	db.Update(func(tx *Tx) error {
		tx.Insert("items", Str("ball"), Int(5))
		tx.Insert("items", Str("bat"), Int(20))
		tx.Insert("items", Str("cap"), Int(9))
		return nil
	})

	all, err := db.DefineView(orderPricesSpec(), Maintain{Interval: 8})
	if err != nil {
		t.Fatal(err)
	}
	cheap, err := db.DefineView(ViewSpec{
		Name:    "cheap_orders",
		Tables:  []string{"orders", "items"},
		Joins:   []Join{{"orders", "item", "items", "item"}},
		Filters: []Filter{{Table: "items", Column: "price", Op: LT, Value: Int(10)}},
		Output:  []OutCol{{"orders", "id"}},
	}, Maintain{Interval: 3})
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := db.DefineView(ViewSpec{
		Name:   "orders_self",
		Tables: []string{"orders", "items"},
		Joins:  []Join{{"orders", "item", "items", "item"}},
		Output: []OutCol{{"items", "price"}},
	}, Maintain{AdaptiveTargetRows: 16})
	if err != nil {
		t.Fatal(err)
	}

	items := []string{"ball", "bat", "cap"}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var last CSN
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w + 500)))
			for i := 0; i < 40; i++ {
				csn, err := db.Update(func(tx *Tx) error {
					return tx.Insert("orders", Int(int64(w*1000+i)), Str(items[r.Intn(3)]))
				})
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				if csn > last {
					last = csn
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	for _, v := range []*View{all, cheap, adaptive} {
		v.WaitForHWM(last)
		if _, err := v.Refresh(); err != nil {
			t.Fatal(err)
		}
		full, csn, err := core.FullRefresh(db.Engine(), viewDef(v))
		if err != nil {
			t.Fatal(err)
		}
		v.WaitForHWM(csn)
		if err := v.RefreshTo(csn); err != nil {
			t.Fatal(err)
		}
		got := v.Relation()
		if got.Len() != full.Len() {
			t.Fatalf("%s: %d distinct tuples, recompute has %d", v.Name(), got.Len(), full.Len())
		}
		for i := range got.Rows {
			if got.Rows[i].Count != full.Rows[i].Count || !got.Rows[i].Tuple.Equal(full.Rows[i].Tuple) {
				t.Fatalf("%s: row %d differs", v.Name(), i)
			}
		}
	}
	// Prune shared base deltas to the slowest view and keep going.
	if pruned := db.PruneBaseDeltas(); pruned == 0 {
		t.Log("nothing pruned (views fully caught up is fine)")
	}
	fin, _ := db.Update(func(tx *Tx) error { return tx.Insert("orders", Int(9999), Str("ball")) })
	all.WaitForHWM(fin)
	if _, err := all.Refresh(); err != nil {
		t.Fatal(err)
	}
}
