package rollingjoin

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/relalg"
	"repro/internal/sched"
)

// UnionView is a materialized view defined as the multiset union of several
// SPJ branches with identical output arity (the paper's union extension).
// Each branch propagates independently into a shared timestamped view
// delta; the union's high-water mark is the minimum across branches, and
// point-in-time refresh works exactly as for plain views. Like View it is
// a thin handle over jobs on the database's maintenance scheduler.
type UnionView struct {
	maintained

	inner   *core.UnionView
	mv      *core.MaterializedView
	applier *core.Applier
}

// DefineUnionView creates and materializes a union view over the branch
// specs. Maintain options apply to every branch (Intervals is per-relation
// within each branch and must match each branch's arity if set).
func (db *DB) DefineUnionView(name string, branches []ViewSpec, opt Maintain) (*UnionView, error) {
	if len(branches) == 0 {
		return nil, errors.New("rollingjoin: union view needs at least one branch")
	}
	db.ensureCapture()
	defs := make([]*core.ViewDef, len(branches))
	for i, spec := range branches {
		if spec.Name == "" {
			spec.Name = fmt.Sprintf("%s#%d", name, i+1)
		}
		def, err := db.resolve(spec)
		if err != nil {
			return nil, err
		}
		defs[i] = def
	}
	interval := opt.Interval
	if interval <= 0 {
		interval = 16
	}
	var policy core.IntervalPolicy
	if len(opt.Intervals) > 0 {
		policy = core.PerRelationIntervals(opt.Intervals...)
	} else {
		policy = core.FixedInterval(interval)
	}

	// The union view starts empty at time 0 and replays the full captured
	// history: every branch propagates from the beginning, so the first
	// Refresh brings the view up to date regardless of pre-existing data.
	// (Define union views before bulk loads, or prune with care: unlike
	// DefineView there is no initial materialization shortcut, keeping all
	// branches on one consistent time axis.)
	schema, err := defs[0].Schema(db.eng)
	if err != nil {
		return nil, err
	}
	mv := core.NewMaterializedView(name, schema, 0)

	inner, err := core.NewUnionView(db.eng, db.src, name, 0, policy, defs...)
	if err != nil {
		return nil, err
	}
	uv := &UnionView{inner: inner, mv: mv}
	uv.applier = core.NewApplier(mv, inner.Dest(), inner.HWM)
	uv.maintained = maintained{db: db, hwm: inner.HWM}
	uv.prop = db.sched.Register("prop:"+name, inner.Step, sched.Options{
		HWM:      inner.HWM,
		Classify: classifyMaintenance,
		Backlog: func(limit int) int {
			return inner.Dest().PendingAfter(mv.MatTime(), limit)
		},
		MaxBacklog:   opt.MaxBacklog,
		OnProgress:   uv.notifyDeps,
		WakeOnNotify: true,
	})
	if opt.AutoRefresh {
		uv.apply = db.sched.Register("apply:"+name, applyStep(uv.applier), sched.Options{
			Classify:   classifyMaintenance,
			OnProgress: uv.prop.Kick,
		})
	}
	db.mu.Lock()
	db.unions = append(db.unions, uv)
	db.mu.Unlock()
	if !opt.Manual {
		uv.StartPropagation()
	}
	return uv, nil
}

// Name returns the union view's name.
func (uv *UnionView) Name() string { return uv.inner.Name }

// HWM returns the union high-water mark (minimum across branches).
func (uv *UnionView) HWM() CSN { return uv.inner.HWM() }

// MatTime returns the commit the materialized tuples reflect.
func (uv *UnionView) MatTime() CSN { return uv.mv.MatTime() }

// Cardinality returns the number of tuples with multiplicity.
func (uv *UnionView) Cardinality() int64 { return uv.mv.Cardinality() }

// Rows returns the materialized tuples (multiplicity expanded).
func (uv *UnionView) Rows() []Tuple {
	rel := uv.mv.AsRelation()
	out := make([]Tuple, 0, rel.Len())
	for _, r := range rel.Rows {
		for i := int64(0); i < r.Count; i++ {
			out = append(out, Tuple(r.Tuple))
		}
	}
	return out
}

// Refresh rolls the union view to its high-water mark.
func (uv *UnionView) Refresh() (CSN, error) {
	t, err := uv.applier.RollToHWM()
	uv.prop.Kick()
	return t, err
}

// RefreshTo rolls the union view to an exact commit.
func (uv *UnionView) RefreshTo(t CSN) error {
	err := uv.applier.RollTo(t)
	uv.prop.Kick()
	return err
}

// Relation exposes the materialized contents for experiments and the SQL
// layer.
func (uv *UnionView) Relation() *relalg.Relation { return uv.mv.AsRelation() }
