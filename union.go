package rollingjoin

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/relalg"
)

// UnionView is a materialized view defined as the multiset union of several
// SPJ branches with identical output arity (the paper's union extension).
// Each branch propagates independently into a shared timestamped view
// delta; the union's high-water mark is the minimum across branches, and
// point-in-time refresh works exactly as for plain views.
type UnionView struct {
	db    *DB
	inner *core.UnionView
	mv    *core.MaterializedView
	apply *core.Applier

	mu      sync.Mutex
	stop    chan struct{}
	done    chan error
	running bool
}

// DefineUnionView creates and materializes a union view over the branch
// specs. Maintain options apply to every branch (Intervals is per-relation
// within each branch and must match each branch's arity if set).
func (db *DB) DefineUnionView(name string, branches []ViewSpec, opt Maintain) (*UnionView, error) {
	if len(branches) == 0 {
		return nil, errors.New("rollingjoin: union view needs at least one branch")
	}
	db.ensureCapture()
	defs := make([]*core.ViewDef, len(branches))
	for i, spec := range branches {
		if spec.Name == "" {
			spec.Name = fmt.Sprintf("%s#%d", name, i+1)
		}
		def, err := db.resolve(spec)
		if err != nil {
			return nil, err
		}
		defs[i] = def
	}
	interval := opt.Interval
	if interval <= 0 {
		interval = 16
	}
	var policy core.IntervalPolicy
	if len(opt.Intervals) > 0 {
		policy = core.PerRelationIntervals(opt.Intervals...)
	} else {
		policy = core.FixedInterval(interval)
	}

	// The union view starts empty at time 0 and replays the full captured
	// history: every branch propagates from the beginning, so the first
	// Refresh brings the view up to date regardless of pre-existing data.
	// (Define union views before bulk loads, or prune with care: unlike
	// DefineView there is no initial materialization shortcut, keeping all
	// branches on one consistent time axis.)
	schema, err := defs[0].Schema(db.eng)
	if err != nil {
		return nil, err
	}
	mv := core.NewMaterializedView(name, schema, 0)

	inner, err := core.NewUnionView(db.eng, db.src, name, 0, policy, defs...)
	if err != nil {
		return nil, err
	}
	uv := &UnionView{db: db, inner: inner, mv: mv}
	uv.apply = core.NewApplier(mv, inner.Dest(), inner.HWM)
	db.mu.Lock()
	db.unions = append(db.unions, uv)
	db.mu.Unlock()
	if !opt.Manual {
		uv.StartPropagation()
	}
	return uv, nil
}

// Name returns the union view's name.
func (uv *UnionView) Name() string { return uv.inner.Name }

// HWM returns the union high-water mark (minimum across branches).
func (uv *UnionView) HWM() CSN { return uv.inner.HWM() }

// MatTime returns the commit the materialized tuples reflect.
func (uv *UnionView) MatTime() CSN { return uv.mv.MatTime() }

// Cardinality returns the number of tuples with multiplicity.
func (uv *UnionView) Cardinality() int64 { return uv.mv.Cardinality() }

// Rows returns the materialized tuples (multiplicity expanded).
func (uv *UnionView) Rows() []Tuple {
	rel := uv.mv.AsRelation()
	out := make([]Tuple, 0, rel.Len())
	for _, r := range rel.Rows {
		for i := int64(0); i < r.Count; i++ {
			out = append(out, Tuple(r.Tuple))
		}
	}
	return out
}

// Refresh rolls the union view to its high-water mark.
func (uv *UnionView) Refresh() (CSN, error) { return uv.apply.RollToHWM() }

// RefreshTo rolls the union view to an exact commit.
func (uv *UnionView) RefreshTo(t CSN) error { return uv.apply.RollTo(t) }

// PropagateStep advances the branch with the lowest high-water mark.
func (uv *UnionView) PropagateStep() error { return uv.inner.Step() }

// Relation exposes the materialized contents for experiments and the SQL
// layer.
func (uv *UnionView) Relation() *relalg.Relation { return uv.mv.AsRelation() }

// CatchUp advances propagation until the high-water mark reaches target,
// stepping synchronously when no background propagator is running.
func (uv *UnionView) CatchUp(target CSN) error {
	for uv.HWM() < target {
		uv.mu.Lock()
		running := uv.running
		uv.mu.Unlock()
		if running {
			time.Sleep(100 * time.Microsecond)
			continue
		}
		if err := uv.inner.Step(); err != nil {
			if errors.Is(err, core.ErrNoProgress) {
				time.Sleep(100 * time.Microsecond)
				continue
			}
			return err
		}
	}
	return nil
}

// WaitForHWM blocks until the high-water mark reaches target (propagation
// must be running or driven concurrently).
func (uv *UnionView) WaitForHWM(target CSN) {
	for uv.HWM() < target {
		time.Sleep(100 * time.Microsecond)
	}
}

// StartPropagation launches background propagation across the branches.
func (uv *UnionView) StartPropagation() {
	uv.mu.Lock()
	defer uv.mu.Unlock()
	if uv.running {
		return
	}
	uv.stop = make(chan struct{})
	uv.done = make(chan error, 1)
	uv.running = true
	stop := uv.stop
	go func() {
		for {
			select {
			case <-stop:
				uv.done <- nil
				return
			default:
			}
			if err := uv.inner.Step(); err != nil {
				if errors.Is(err, core.ErrNoProgress) {
					select {
					case <-stop:
						uv.done <- nil
						return
					case <-time.After(time.Millisecond):
					}
					continue
				}
				uv.done <- err
				return
			}
		}
	}()
}

// StopPropagation suspends propagation; it can be restarted.
func (uv *UnionView) StopPropagation() error {
	uv.mu.Lock()
	if !uv.running {
		uv.mu.Unlock()
		return nil
	}
	close(uv.stop)
	uv.running = false
	done := uv.done
	uv.mu.Unlock()
	return <-done
}
