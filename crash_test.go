package rollingjoin

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/wal"
)

// The crash-recovery property suite: run a workload against a fault device,
// kill the process at an armed failpoint (freezing the device so nothing
// later becomes durable), reopen from the crash image, recover, and verify
// that every maintained view equals a full recomputation, that the HWM
// never exceeds the durable state, and that the recovered CSN is exactly
// the durable frontier (every acknowledged commit survives; at most the
// one in-flight unacknowledged commit may additionally persist).

// crashItems are the join dimension rows seeded before the failpoint arms.
var crashItems = []struct {
	name  string
	price int64
}{{"ball", 5}, {"bat", 20}, {"puck", 7}}

func crashCatalog(t *testing.T, db *DB) {
	t.Helper()
	if err := db.CreateTable("orders", Col("id", TypeInt), Col("item", TypeString)); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable("items", Col("item", TypeString), Col("price", TypeInt)); err != nil {
		t.Fatal(err)
	}
}

// multiset folds tuples into count form for order-independent comparison.
func multiset(rows []Tuple) map[string]int {
	m := make(map[string]int, len(rows))
	for _, r := range rows {
		m[fmt.Sprintf("%v", r)]++
	}
	return m
}

func multisetsEqual(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, n := range a {
		if b[k] != n {
			return false
		}
	}
	return true
}

// runCrashWorkload drives commits (and one mid-run checkpoint) against a
// fault device until the armed failpoint freezes it. It returns the crash
// image, the highest acknowledged commit, and whether a checkpoint was
// fully published before the crash.
func runCrashWorkload(t *testing.T, point string, hits int64, seed int64, extra int64, ckptPath string, optMut ...func(*Options)) (img []byte, lastAcked CSN, ckptOK bool) {
	t.Helper()
	fault.Reset()
	fdev := fault.NewDevice(wal.NewMemDevice())
	opts := Options{Device: fdev, SyncOnCommit: true}
	for _, mut := range optMut {
		mut(&opts)
	}
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	crashCatalog(t, db)
	if csn, err := db.Update(func(tx *Tx) error {
		for _, it := range crashItems {
			if err := tx.Insert("items", Str(it.name), Int(it.price)); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	} else {
		lastAcked = csn
	}

	fault.Set(point, fault.CrashOnHit(hits, fdev))
	view, err := db.DefineView(orderPricesSpec(), Maintain{Interval: 4, AutoRefresh: true})
	if err != nil {
		t.Fatal(err)
	}
	_ = view

	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 60 && !fdev.Frozen(); i++ {
		if i == 30 {
			if err := db.Checkpoint(ckptPath); err == nil {
				ckptOK = true
			}
		}
		id := int64(i)
		item := crashItems[rng.Intn(len(crashItems))].name
		var csn CSN
		if i > 5 && rng.Intn(4) == 0 {
			csn, err = db.Update(func(tx *Tx) error {
				_, derr := tx.Delete("orders", "id", EQ, Int(id-3), 1)
				return derr
			})
		} else {
			csn, err = db.Update(func(tx *Tx) error { return tx.Insert("orders", Int(id), Str(item)) })
		}
		if err != nil {
			break
		}
		lastAcked = csn
	}
	// Background points (capture replay, apply) fire on the capture or
	// scheduler goroutines; give them a moment if the workload outran them.
	deadline := time.Now().Add(5 * time.Second)
	for !fdev.Frozen() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if !fdev.Frozen() {
		t.Fatalf("failpoint %s never fired (%d evals)", point, fault.Evals(point))
	}
	img, err = fdev.CrashImage(extra)
	if err != nil {
		t.Fatal(err)
	}
	fault.Reset()
	db.Close()
	return img, lastAcked, ckptOK
}

// recoverAndVerify reopens a crash image, recovers (preferring the
// checkpoint when one was published), and checks every durability property.
func recoverAndVerify(t *testing.T, img []byte, lastAcked CSN, ckptOK bool, ckptPath string) {
	t.Helper()
	db, err := Open(Options{Device: wal.NewMemDeviceFrom(img), SyncOnCommit: true})
	if err != nil {
		t.Fatalf("reopen from crash image: %v", err)
	}
	defer db.Close()
	crashCatalog(t, db)
	var recovered CSN
	if ckptOK {
		recovered, err = db.Restore(ckptPath)
	} else {
		recovered, err = db.Recover()
	}
	if err != nil {
		t.Fatalf("recovery (checkpoint=%v): %v", ckptOK, err)
	}
	// Every acknowledged commit is durable. (No tight upper bound holds:
	// background propagation transactions also consume CSNs and log commit
	// records, so the durable frontier can sit past the last workload ack.)
	if recovered < lastAcked {
		t.Fatalf("recovered CSN %d lost acked commit %d", recovered, lastAcked)
	}
	if db.LastCSN() != recovered {
		t.Fatalf("CSN counter %d != recovered %d", db.LastCSN(), recovered)
	}

	view, err := db.DefineView(orderPricesSpec(), Maintain{Interval: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := view.CatchUp(db.LastCSN()); err != nil {
		t.Fatal(err)
	}
	if _, err := view.Refresh(); err != nil && !errors.Is(err, ErrBackward) {
		t.Fatal(err)
	}
	if view.HWM() > db.LastCSN() {
		t.Fatalf("HWM %d exceeds durable CSN %d", view.HWM(), db.LastCSN())
	}
	full, err := db.Query(orderPricesSpec())
	if err != nil {
		t.Fatal(err)
	}
	got, want := multiset(view.Rows()), multiset(full.Rows)
	if !multisetsEqual(got, want) {
		t.Fatalf("view diverged from full recomputation after recovery:\n view: %v\n full: %v", got, want)
	}
	// The recovered database accepts new commits and maintains the view
	// past them.
	post, err := db.Update(func(tx *Tx) error { return tx.Insert("orders", Int(999), Str("ball")) })
	if err != nil {
		t.Fatal(err)
	}
	if err := view.CatchUp(post); err != nil {
		t.Fatal(err)
	}
	if _, err := view.Refresh(); err != nil {
		t.Fatal(err)
	}
	full2, err := db.Query(orderPricesSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !multisetsEqual(multiset(view.Rows()), multiset(full2.Rows)) {
		t.Fatal("view diverged after post-recovery commit")
	}
}

// TestCrashRecovery is the property suite across all eight failpoint
// classes. Hit counts are sized so each point fires mid-workload (the
// checkpoint points during the mid-run Checkpoint call); seeds vary the
// workload mix and how many unsynced tail bytes the crash image keeps.
func TestCrashRecovery(t *testing.T) {
	runs := []struct {
		point string
		hits  int64
	}{
		{fault.PointWALAppend, 25},
		{fault.PointWALSync, 10},
		{fault.PointCheckpointWrite, 1},
		{fault.PointCheckpointRename, 1},
		{fault.PointCaptureReplay, 12},
		{fault.PointApply, 2},
		{fault.PointPublish, 8},
	}
	extras := []int64{0, 5, -1}
	for _, run := range runs {
		for si, seed := range []int64{1, 2, 3} {
			name := fmt.Sprintf("%s/seed%d", run.point, seed)
			t.Run(name, func(t *testing.T) {
				defer fault.Reset()
				ckpt := filepath.Join(t.TempDir(), "crash.ckpt")
				img, lastAcked, ckptOK := runCrashWorkload(t, run.point, run.hits, seed, extras[si], ckpt)
				recoverAndVerify(t, img, lastAcked, ckptOK, ckpt)
			})
		}
	}
}

// TestCrashRecoveryAtRestore covers the eighth point: the crash hits during
// snapshot restore itself. The first recovery attempt dies at the restore
// failpoint; a retry on a fresh device from the same image must succeed and
// still satisfy every property — restore is idempotent from the outside.
func TestCrashRecoveryAtRestore(t *testing.T) {
	defer fault.Reset()
	for _, seed := range []int64{1, 2, 3} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			fault.Reset()
			ckpt := filepath.Join(t.TempDir(), "crash.ckpt")
			// Run the workload with a crash late enough that the mid-run
			// checkpoint has been published, so recovery goes through Restore.
			img, lastAcked, ckptOK := runCrashWorkload(t, fault.PointWALAppend, 120, seed, 0, ckpt)
			if !ckptOK {
				t.Fatal("workload crashed before the checkpoint published")
			}
			// First recovery attempt: crash during restore.
			dev := fault.NewDevice(wal.NewMemDeviceFrom(img))
			db, err := Open(Options{Device: dev, SyncOnCommit: true})
			if err != nil {
				t.Fatal(err)
			}
			crashCatalog(t, db)
			fault.Set(fault.PointRestore, fault.CrashOnHit(1, dev))
			if _, err := db.Restore(ckpt); !errors.Is(err, fault.ErrCrash) {
				t.Fatalf("restore should crash, got %v", err)
			}
			fault.Reset()
			db.Close()
			// Retry from the same image on a fresh device: the failed restore
			// wrote nothing durable, so the full verification still holds.
			recoverAndVerify(t, img, lastAcked, true, ckpt)
		})
	}
}

// TestCrashDuringMigration covers the "migrate" failpoint class: the
// process dies exactly as the heavy/light classifier moves a join key
// between the generic hash path and a dedicated heavy partition. The
// workload drives hot-key blocks (32 commits per key) into a 4-way
// partitioned instance, so the first block's key promotes deterministically
// at count 16 and the second block yields a second migration — hit counts 1
// and 2 crash on each. Migration touches only volatile state (classifier
// and resident cache buckets; physical routing is purely hash), so the
// recovered view must equal a full recomputation, and a fresh hot-key burst
// after recovery must classify and maintain correctly again from an empty
// sketch.
func TestCrashDuringMigration(t *testing.T) {
	defer fault.Reset()
	for _, seed := range []int64{1, 2} {
		for _, hits := range []int64{1, 2} {
			t.Run(fmt.Sprintf("seed%d/hit%d", seed, hits), func(t *testing.T) {
				fault.Reset()
				fdev := fault.NewDevice(wal.NewMemDevice())
				db, err := Open(Options{Device: fdev, SyncOnCommit: true, Partitions: 4})
				if err != nil {
					t.Fatal(err)
				}
				crashCatalog(t, db)
				var lastAcked CSN
				if csn, err := db.Update(func(tx *Tx) error {
					for _, it := range crashItems {
						if err := tx.Insert("items", Str(it.name), Int(it.price)); err != nil {
							return err
						}
					}
					return nil
				}); err != nil {
					t.Fatal(err)
				} else {
					lastAcked = csn
				}
				if _, err := db.DefineView(orderPricesSpec(), Maintain{Interval: 4, AutoRefresh: true}); err != nil {
					t.Fatal(err)
				}

				fault.Set(fault.PointMigrate, fault.CrashOnHit(hits, fdev))
				rng := rand.New(rand.NewSource(seed))
				for i := 0; i < 128 && !fdev.Frozen(); i++ {
					// Hot-key blocks on the partition column (orders.id):
					// 32 commits of id 0, then 32 of id 1, and so on.
					id := int64(i / 32)
					item := crashItems[rng.Intn(len(crashItems))].name
					csn, err := db.Update(func(tx *Tx) error { return tx.Insert("orders", Int(id), Str(item)) })
					if err != nil {
						break
					}
					lastAcked = csn
				}
				// The classifier runs on the capture goroutine; wait for the
				// armed crash if the writers outran it.
				deadline := time.Now().Add(5 * time.Second)
				for !fdev.Frozen() && time.Now().Before(deadline) {
					time.Sleep(time.Millisecond)
				}
				if !fdev.Frozen() {
					t.Fatalf("migrate failpoint never fired (%d evals)", fault.Evals(fault.PointMigrate))
				}
				img, err := fdev.CrashImage(0)
				if err != nil {
					t.Fatal(err)
				}
				fault.Reset()
				db.Close()

				// Reopen the crash image partitioned the same way, recover, and
				// verify the view against recomputation.
				rdb, err := Open(Options{Device: wal.NewMemDeviceFrom(img), SyncOnCommit: true, Partitions: 4})
				if err != nil {
					t.Fatalf("reopen from crash image: %v", err)
				}
				defer rdb.Close()
				crashCatalog(t, rdb)
				recovered, err := rdb.Recover()
				if err != nil {
					t.Fatalf("recovery: %v", err)
				}
				if recovered < lastAcked {
					t.Fatalf("recovered CSN %d lost acked commit %d", recovered, lastAcked)
				}
				view, err := rdb.DefineView(orderPricesSpec(), Maintain{Interval: 4})
				if err != nil {
					t.Fatal(err)
				}
				verify := func(stage string) {
					t.Helper()
					if err := view.CatchUp(rdb.LastCSN()); err != nil {
						t.Fatal(err)
					}
					if _, err := view.Refresh(); err != nil && !errors.Is(err, ErrBackward) {
						t.Fatal(err)
					}
					full, err := rdb.Query(orderPricesSpec())
					if err != nil {
						t.Fatal(err)
					}
					got, want := multiset(view.Rows()), multiset(full.Rows)
					if !multisetsEqual(got, want) {
						t.Fatalf("view diverged from recomputation %s:\n view: %v\n full: %v", stage, got, want)
					}
				}
				verify("after crash mid-migration")
				// A fresh hot-key burst: the rebuilt (empty) sketch must
				// classify again and the view must stay correct through the
				// resulting migrations.
				for i := 0; i < 40; i++ {
					if _, err := rdb.Update(func(tx *Tx) error {
						return tx.Insert("orders", Int(7), Str(crashItems[i%len(crashItems)].name))
					}); err != nil {
						t.Fatal(err)
					}
				}
				verify("after post-recovery hot-key burst")
			})
		}
	}
}

// TestMidLogCorruptionFailsRecovery: bit rot inside the durable log body is
// detected at reopen and reported with the damaged frame's offset rather
// than silently truncating away committed transactions.
func TestMidLogCorruptionFailsRecovery(t *testing.T) {
	defer fault.Reset()
	fdev := fault.NewDevice(wal.NewMemDevice())
	db, err := Open(Options{Device: fdev, SyncOnCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	crashCatalog(t, db)
	for i := 0; i < 10; i++ {
		if _, err := db.Update(func(tx *Tx) error { return tx.Insert("orders", Int(int64(i)), Str("ball")) }); err != nil {
			t.Fatal(err)
		}
	}
	img, err := fdev.CrashImage(-1)
	if err != nil {
		t.Fatal(err)
	}
	db.Close()
	// Flip one byte in the middle of the log: a fully present frame is now
	// damaged durable data.
	img[len(img)/2] ^= 0xFF
	if _, err := Open(Options{Device: wal.NewMemDeviceFrom(img), SyncOnCommit: true}); err == nil {
		t.Fatal("reopen over mid-log corruption should fail")
	} else if !errors.Is(err, wal.ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
}

// --- cascade crash class ---

// cascadeCrashCatalog registers the fact/dimension tables of the 3-level
// cascade workload (orders ⋈ regions → per-region rollup → filtered top).
func cascadeCrashCatalog(t *testing.T, db *DB) {
	t.Helper()
	if err := db.CreateTable("orders", Col("oid", TypeInt), Col("cust", TypeInt), Col("amt", TypeFloat)); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable("regions", Col("cust", TypeInt), Col("region", TypeString)); err != nil {
		t.Fatal(err)
	}
}

// defineCascade (re)defines all three levels with the same names and
// returns them. Used both before the crash and after recovery.
func defineCascade(t *testing.T, db *DB, opt Maintain) (*View, *AggregateView, *View) {
	t.Helper()
	enriched, err := db.DefineView(ViewSpec{
		Name:   "c_enriched",
		Tables: []string{"orders", "regions"},
		Joins:  []Join{{LeftTable: "orders", LeftColumn: "cust", RightTable: "regions", RightColumn: "cust"}},
	}, opt)
	if err != nil {
		t.Fatal(err)
	}
	rollup, err := db.DefineAggregate(AggSpec{
		Name:    "c_rollup",
		Source:  "c_enriched",
		GroupBy: []string{"region"},
		Aggs:    []Agg{{Func: AggCount}, {Func: AggSum, Column: "amt"}, {Func: AggMax, Column: "amt"}},
	}, opt)
	if err != nil {
		t.Fatal(err)
	}
	top, err := db.DefineView(ViewSpec{
		Name:    "c_top",
		Tables:  []string{"c_rollup"},
		Filters: []Filter{{Table: "c_rollup", Column: "sum_amt", Op: GE, Value: Float(0)}},
	}, opt)
	if err != nil {
		t.Fatal(err)
	}
	return enriched, rollup, top
}

// cascadeOracle recomputes the rollup groups from the base tables.
func cascadeOracle(t *testing.T, db *DB) map[string][3]float64 {
	t.Helper()
	res, err := db.Query(ViewSpec{
		Name:   "oracle",
		Tables: []string{"orders", "regions"},
		Joins:  []Join{{LeftTable: "orders", LeftColumn: "cust", RightTable: "regions", RightColumn: "cust"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string][3]float64)
	for _, row := range res.Rows {
		region, amt := row[4].AsString(), row[2].AsFloat()
		a := out[region]
		if a[0] == 0 || amt > a[2] {
			a[2] = amt
		}
		a[0]++
		a[1] += amt
		out[region] = a
	}
	return out
}

// checkCascadeLevels refreshes every level to the current durable frontier
// and compares each against recomputation.
func checkCascadeLevels(t *testing.T, db *DB, enriched *View, rollup *AggregateView, top *View) {
	t.Helper()
	target := db.LastCSN()
	// Catching the top level up drives the whole chain: its composite
	// source waits on the rollup, which waits on the join view.
	if err := top.CatchUp(target); err != nil {
		t.Fatal(err)
	}
	for _, refresh := range []func() (CSN, error){enriched.Refresh, rollup.Refresh, top.Refresh} {
		if _, err := refresh(); err != nil && !errors.Is(err, ErrBackward) {
			t.Fatal(err)
		}
	}
	// Level 1: join view vs ad-hoc recomputation.
	full, err := db.Query(ViewSpec{
		Name:   "oracle1",
		Tables: []string{"orders", "regions"},
		Joins:  []Join{{LeftTable: "orders", LeftColumn: "cust", RightTable: "regions", RightColumn: "cust"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := multiset(enriched.Rows()), multiset(full.Rows); !multisetsEqual(got, want) {
		t.Fatalf("join view diverged from recomputation:\n view: %v\n full: %v", got, want)
	}
	// Level 2: rollup vs group-by oracle.
	oracle := cascadeOracle(t, db)
	rows := rollup.Rows()
	if len(rows) != len(oracle) {
		t.Fatalf("rollup has %d groups, oracle %d", len(rows), len(oracle))
	}
	for _, r := range rows {
		region := r[0].AsString()
		want, ok := oracle[region]
		if !ok {
			t.Fatalf("unexpected group %q", region)
		}
		n, sum, max := float64(r[1].AsInt()), r[2].AsFloat(), r[3].AsFloat()
		if n != want[0] || sum-want[1] > 1e-6 || want[1]-sum > 1e-6 || max != want[2] {
			t.Fatalf("group %q = (n=%v sum=%v max=%v), want %v", region, n, sum, max, want)
		}
	}
	// Level 3: the filtered top view equals the rollup under its filter.
	if got, want := len(top.Rows()), len(rows); got != want {
		t.Fatalf("top view has %d rows, rollup %d groups", got, want)
	}
}

// TestCrashRecoveryCascade crashes a 3-level cascade (join view →
// incremental aggregate → view over the aggregate) at failpoints across
// the stack — including the aggregate's own propagation step — then
// recovers from the crash image, redefines all levels, and verifies each
// against full recomputation, plus liveness for post-recovery commits.
func TestCrashRecoveryCascade(t *testing.T) {
	points := []struct {
		point string
		hits  int64
	}{
		{fault.PointAggregate, 3},
		{fault.PointApply, 3},
		{fault.PointWALAppend, 30},
		{fault.PointCaptureReplay, 15},
		{fault.PointPublish, 10},
	}
	for _, run := range points {
		for _, seed := range []int64{1, 2} {
			name := fmt.Sprintf("%s/seed%d", run.point, seed)
			t.Run(name, func(t *testing.T) {
				defer fault.Reset()
				fault.Reset()
				fdev := fault.NewDevice(wal.NewMemDevice())
				db, err := Open(Options{Device: fdev, SyncOnCommit: true})
				if err != nil {
					t.Fatal(err)
				}
				cascadeCrashCatalog(t, db)
				var lastAcked CSN
				if csn, err := db.Update(func(tx *Tx) error {
					for c := 0; c < 10; c++ {
						if err := tx.Insert("regions", Int(int64(c)), Str(fmt.Sprintf("r%d", c%3))); err != nil {
							return err
						}
					}
					return nil
				}); err != nil {
					t.Fatal(err)
				} else {
					lastAcked = csn
				}

				// Arm after definition: the three initial materializations
				// already evaluate apply/aggregate points, and the class
				// under test is a crash during live cascade maintenance.
				defineCascade(t, db, Maintain{Interval: 4, AutoRefresh: true})
				fault.Set(run.point, fault.CrashOnHit(run.hits, fdev))

				rng := rand.New(rand.NewSource(seed))
				for i := 0; i < 80 && !fdev.Frozen(); i++ {
					id := int64(i)
					var csn CSN
					if i > 5 && rng.Intn(4) == 0 {
						// Deleting a recent order often removes a group's
						// current maximum, exercising extrema retraction.
						csn, err = db.Update(func(tx *Tx) error {
							_, derr := tx.Delete("orders", "oid", EQ, Int(id-2), 1)
							return derr
						})
					} else {
						csn, err = db.Update(func(tx *Tx) error {
							return tx.Insert("orders", Int(id), Int(id%10), Float(float64(10*i)))
						})
					}
					if err != nil {
						break
					}
					lastAcked = csn
				}
				deadline := time.Now().Add(5 * time.Second)
				for !fdev.Frozen() && time.Now().Before(deadline) {
					time.Sleep(time.Millisecond)
				}
				if !fdev.Frozen() {
					t.Fatalf("failpoint %s never fired (%d evals)", run.point, fault.Evals(run.point))
				}
				img, err := fdev.CrashImage(0)
				if err != nil {
					t.Fatal(err)
				}
				fault.Reset()
				db.Close()

				// Recover and rebuild every level of the cascade.
				db2, err := Open(Options{Device: wal.NewMemDeviceFrom(img), SyncOnCommit: true})
				if err != nil {
					t.Fatalf("reopen from crash image: %v", err)
				}
				defer db2.Close()
				cascadeCrashCatalog(t, db2)
				recovered, err := db2.Recover()
				if err != nil {
					t.Fatalf("recover: %v", err)
				}
				if recovered < lastAcked {
					t.Fatalf("recovered CSN %d lost acked commit %d", recovered, lastAcked)
				}
				enriched, rollup, top := defineCascade(t, db2, Maintain{Interval: 4})
				checkCascadeLevels(t, db2, enriched, rollup, top)

				// The recovered cascade keeps maintaining past new commits.
				if _, err := db2.Update(func(tx *Tx) error {
					return tx.Insert("orders", Int(999), Int(3), Float(123))
				}); err != nil {
					t.Fatal(err)
				}
				checkCascadeLevels(t, db2, enriched, rollup, top)
			})
		}
	}
}
