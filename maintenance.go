package rollingjoin

import (
	"context"
	"errors"
	"sync"

	"repro/internal/capture"
	"repro/internal/core"
	"repro/internal/relalg"
	"repro/internal/sched"
)

// classifyMaintenance is the error policy shared by every maintenance
// job: capture lag is transient (wait for the next notification), a
// stopped capture source halts the job cleanly, and anything else is a
// genuine failure retried with capped exponential backoff before
// fail-stopping.
func classifyMaintenance(err error) sched.Outcome {
	switch {
	case err == nil:
		return sched.Progress
	case errors.Is(err, core.ErrNoProgress):
		return sched.Idle
	case errors.Is(err, capture.ErrStopped):
		return sched.Halt
	default:
		return sched.Fail
	}
}

// maintained is the one maintenance lifecycle in the package: a thin
// handle over jobs on the DB's scheduler. View, UnionView, and Summary
// embed or reference it instead of carrying their own goroutine loops —
// start/stop are idempotent and safe under concurrent churn, Stop drains
// the in-flight step, and waits are event-driven (no sleep polling).
type maintained struct {
	db    *DB
	prop  *sched.Job // propagation: advances the view delta HWM
	apply *sched.Job // application (AutoRefresh only): rolls the MV
	hwm   func() CSN

	// src is the capture source this view's propagation gates on. For a
	// view over base tables it is the database's capture process; for a
	// cascaded view (reading other maintained views) it is a composite
	// ViewSource whose progress is min(capture, upstream HWMs). Nil falls
	// back to the database source.
	src capture.Source
	// ups are the maintained upstream views this view reads as relations
	// (cascade edges), recorded for lifecycle bookkeeping.
	ups []*maintained

	depMu sync.Mutex
	deps  []*sched.Job // downstream propagation / summary jobs, kicked on progress
}

// notifyDeps chains downstream jobs on propagation progress: the apply
// job (new delta rows to fold in) and any summary auto-refreshers.
func (m *maintained) notifyDeps() {
	if m.apply != nil {
		m.apply.Kick()
	}
	m.depMu.Lock()
	deps := m.deps
	m.depMu.Unlock()
	for _, d := range deps {
		d.Kick()
	}
}

// addDep registers a dependent job to kick on propagation progress.
// This is the scheduler-level cascade chain: a downstream view's
// propagation job registered here wakes whenever this view's high-water
// mark advances, so deltas flow level to level without polling.
func (m *maintained) addDep(j *sched.Job) {
	m.depMu.Lock()
	m.deps = append(m.deps, j)
	m.depMu.Unlock()
}

// removeDep detaches a dependent job (a downstream view being dropped).
func (m *maintained) removeDep(j *sched.Job) {
	m.depMu.Lock()
	for i, d := range m.deps {
		if d == j {
			m.deps = append(m.deps[:i], m.deps[i+1:]...)
			break
		}
	}
	m.depMu.Unlock()
}

// unregisterJobs removes every job from the scheduler (DropView).
func (m *maintained) unregisterJobs() {
	m.depMu.Lock()
	deps := m.deps
	m.deps = nil
	m.depMu.Unlock()
	for _, d := range deps {
		m.db.sched.Unregister(d)
	}
	if m.apply != nil {
		m.db.sched.Unregister(m.apply)
	}
	m.db.sched.Unregister(m.prop)
}

// StartPropagation schedules the view's maintenance jobs; it is
// idempotent and safe to call concurrently with StopPropagation.
func (m *maintained) StartPropagation() {
	m.prop.Start()
	if m.apply != nil {
		m.apply.Start()
	}
}

// StopPropagation suspends maintenance (the paper's "either process can
// be suspended during periods of high system load"): it takes the jobs
// out of scheduling, drains any in-flight step before returning, and can
// be restarted from the same position. It returns the terminal error if
// a job fail-stopped.
func (m *maintained) StopPropagation() error {
	err := m.prop.Stop()
	if m.apply != nil {
		if aerr := m.apply.Stop(); err == nil {
			err = aerr
		}
	}
	return err
}

// Maintaining reports whether background maintenance is currently
// scheduled for this view.
func (m *maintained) Maintaining() bool { return m.prop.Running() }

// Err returns the terminal error of a fail-stopped maintenance job (nil
// while maintenance is healthy). A job fail-stops after its step errors
// through the scheduler's whole retry/backoff budget; StartPropagation
// clears the state and resumes from the last good position.
func (m *maintained) Err() error {
	if err := m.prop.Err(); err != nil {
		return err
	}
	if m.apply != nil {
		return m.apply.Err()
	}
	return nil
}

// WaitForHWM blocks until the high-water mark reaches target.
// Propagation must be running (or driven concurrently via
// PropagateStep/CatchUp). The wait is event-driven — the goroutine
// sleeps until a propagation step makes progress.
func (m *maintained) WaitForHWM(target CSN) {
	_ = m.WaitForHWMContext(context.Background(), target)
}

// WaitForHWMContext is WaitForHWM with cancellation: it returns the
// context's error on timeout/cancel, or the propagation job's terminal
// error if maintenance fail-stopped while waiting.
func (m *maintained) WaitForHWMContext(ctx context.Context, target CSN) error {
	m.prop.Demand(target)
	return m.prop.Await(ctx, func() bool { return m.hwm() >= target })
}

// CatchUp advances propagation until the high-water mark reaches target.
// With background maintenance running it waits on scheduler
// notifications; otherwise it drives propagation steps synchronously,
// blocking on capture progress (not spinning) when the delta tables have
// nothing new. Refresh after CatchUp(db.LastCSN()) is "refresh the view
// to now".
func (m *maintained) CatchUp(target CSN) error {
	return m.CatchUpContext(context.Background(), target)
}

// CatchUpContext is CatchUp with cancellation.
func (m *maintained) CatchUpContext(ctx context.Context, target CSN) error {
	for m.hwm() < target {
		if err := ctx.Err(); err != nil {
			return err
		}
		if m.prop.Running() {
			// Demand overrides backpressure parking so a waiter is never
			// stranded behind an un-refreshed apply backlog.
			m.prop.Demand(target)
			if err := m.prop.Await(ctx, func() bool { return m.hwm() >= target }); err != nil {
				return err
			}
			continue
		}
		if err := m.prop.StepNow(); err != nil {
			if errors.Is(err, core.ErrNoProgress) {
				// The HWM sits at the last interval boundary; capture
				// reaching one past it is exactly the event that makes the
				// next step productive.
				if werr := m.waitCapture(ctx, m.hwm()+1); werr != nil {
					return werr
				}
				continue
			}
			return err
		}
	}
	return nil
}

// source returns the capture source this view gates on: the composite
// cascade source when set, else the database's capture process.
func (m *maintained) source() capture.Source {
	if m.src != nil {
		return m.src
	}
	return m.db.Source()
}

// waitCapture blocks until capture progress reaches csn, honoring ctx
// when the source supports context-aware waits. For a cascaded view the
// source is a ViewSource, so this also drives lagging upstream views'
// propagation forward.
func (m *maintained) waitCapture(ctx context.Context, csn CSN) error {
	src := m.source()
	if w, ok := src.(interface {
		WaitProgressContext(context.Context, relalg.CSN) error
	}); ok {
		return w.WaitProgressContext(ctx, csn)
	}
	return src.WaitProgress(csn)
}

// PropagateStep runs one propagation step synchronously (Manual mode).
// It returns core.ErrNoProgress when capture has nothing new. Steps are
// serialized with background maintenance, so manual and scheduled
// driving compose.
func (m *maintained) PropagateStep() error { return m.prop.StepNow() }

// applyStep adapts an Applier to a scheduler job: it reports
// ErrNoProgress (→ Idle) when the materialization time is already at the
// high-water mark, so the job sleeps until the next propagation advance.
func applyStep(a *core.Applier) func() error {
	return func() error {
		before := a.View().MatTime()
		t, err := a.RollToHWM()
		if err != nil {
			return err
		}
		if t <= before {
			return core.ErrNoProgress
		}
		return nil
	}
}

// summaryStep adapts a SummaryView the same way.
func summaryStep(sv *core.SummaryView) func() error {
	return func() error {
		before := sv.MatTime()
		t, err := sv.RollToHWM()
		if err != nil {
			return err
		}
		if t <= before {
			return core.ErrNoProgress
		}
		return nil
	}
}
