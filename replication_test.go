package rollingjoin_test

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	rollingjoin "repro"
	"repro/internal/fault"
	"repro/internal/repl"
	"repro/internal/tuple"
	"repro/internal/wal"
)

// replSchema creates the replicated tables and view — identical DDL on
// leader and follower, since only committed data travels on the wire.
func replSchema(t *testing.T, db *rollingjoin.DB) *rollingjoin.View {
	t.Helper()
	if err := db.CreateTable("users",
		rollingjoin.Col("id", rollingjoin.TypeInt),
		rollingjoin.Col("name", rollingjoin.TypeString),
	); err != nil {
		t.Fatalf("create users: %v", err)
	}
	if err := db.CreateTable("orders",
		rollingjoin.Col("uid", rollingjoin.TypeInt),
		rollingjoin.Col("amount", rollingjoin.TypeInt),
	); err != nil {
		t.Fatalf("create orders: %v", err)
	}
	v, err := db.DefineView(rollingjoin.ViewSpec{
		Name:   "big",
		Tables: []string{"users", "orders"},
		Joins: []rollingjoin.Join{{
			LeftTable: "users", LeftColumn: "id",
			RightTable: "orders", RightColumn: "uid",
		}},
		Output: []rollingjoin.OutCol{
			{Table: "users", Column: "name"},
			{Table: "orders", Column: "amount"},
		},
	}, rollingjoin.Maintain{Interval: 1})
	if err != nil {
		t.Fatalf("define view: %v", err)
	}
	return v
}

func replRows(t *testing.T, v *rollingjoin.View, asOf rollingjoin.CSN) []string {
	t.Helper()
	rows, err := v.MaterializeAt(asOf)
	if err != nil {
		t.Fatalf("materialize %s at %d: %v", v.Name(), asOf, err)
	}
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = string(tuple.EncodeRow(nil, tuple.Tuple(r)))
	}
	sort.Strings(out)
	return out
}

func replWait(t *testing.T, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func replCommit(t *testing.T, db *rollingjoin.DB, i int) {
	t.Helper()
	if _, err := db.Update(func(tx *rollingjoin.Tx) error {
		if err := tx.Insert("users", rollingjoin.Int(int64(i)), rollingjoin.Str(fmt.Sprintf("u%d", i))); err != nil {
			return err
		}
		return tx.Insert("orders", rollingjoin.Int(int64(i)), rollingjoin.Int(int64(i*3)))
	}); err != nil {
		t.Fatalf("commit %d: %v", i, err)
	}
}

// converge quiesces the leader, then drives the follower to the same
// instant and asserts byte-equal view contents.
func converge(t *testing.T, leader, follower *rollingjoin.DB, lv, fv *rollingjoin.View) {
	t.Helper()
	if _, err := lv.Refresh(); err != nil {
		t.Fatalf("leader refresh: %v", err)
	}
	target := leader.LastCSN()
	hwm := lv.HWM()
	replWait(t, "follower replay", 15*time.Second, func() bool {
		return follower.AppliedCSN() >= target
	})
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := fv.WaitForHWMContext(ctx, hwm); err != nil {
		t.Fatalf("follower HWM %d (applied %d, want %d): %v", fv.HWM(), follower.AppliedCSN(), hwm, err)
	}
	want := replRows(t, lv, hwm)
	got := replRows(t, fv, hwm)
	if len(want) != len(got) {
		t.Fatalf("cardinality at %d: leader %d follower %d", hwm, len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("row %d at %d differs:\nleader   %q\nfollower %q", i, hwm, want[i], got[i])
		}
	}
}

// TestFailoverLeaderCrash kills a leader mid-ship and restarts it from its
// crash image: the follower must retain its consistent prefix through the
// outage, reconnect, and converge with the recovered leader — including
// commits made only after the restart.
func TestFailoverLeaderCrash(t *testing.T) {
	fault.Reset()
	defer fault.Reset()
	fdev := fault.NewDevice(wal.NewMemDevice())
	leader, err := rollingjoin.Open(rollingjoin.Options{Device: fdev, SyncOnCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	lv := replSchema(t, leader)
	srv := httptest.NewServer(repl.NewServer(leader).Handler())

	follower, err := rollingjoin.Open(rollingjoin.Options{Follower: true})
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	fv := replSchema(t, follower)
	tailer := repl.NewTailer(follower, srv.URL)
	tailer.Start()

	for i := 0; i < 25; i++ {
		replCommit(t, leader, i)
	}
	preCrash := leader.LastCSN()
	replWait(t, "mid-ship progress", 15*time.Second, func() bool {
		return follower.AppliedCSN() > 0
	})

	// Crash: capture the device image a reopen would observe, then tear the
	// serving stack down abruptly under the still-running tailer.
	img, err := fdev.CrashImage(-1)
	if err != nil {
		t.Fatalf("crash image: %v", err)
	}
	srv.CloseClientConnections()
	srv.Close()
	leader.Close()
	tailer.Stop()
	if err := tailer.Err(); err != nil {
		t.Fatalf("tailer failed during outage: %v", err)
	}
	applied := follower.AppliedCSN()

	// Restart the leader from the crash image: recreate the catalog, replay
	// the log, and serve again.
	leader2, err := rollingjoin.Open(rollingjoin.Options{
		Device:       wal.NewMemDeviceFrom(img),
		SyncOnCommit: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer leader2.Close()
	if err := leader2.CreateTable("users",
		rollingjoin.Col("id", rollingjoin.TypeInt),
		rollingjoin.Col("name", rollingjoin.TypeString),
	); err != nil {
		t.Fatal(err)
	}
	if err := leader2.CreateTable("orders",
		rollingjoin.Col("uid", rollingjoin.TypeInt),
		rollingjoin.Col("amount", rollingjoin.TypeInt),
	); err != nil {
		t.Fatal(err)
	}
	recovered, err := leader2.Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if recovered < preCrash {
		t.Fatalf("recovered CSN %d < pre-crash %d", recovered, preCrash)
	}
	// The follower's prefix must sit within the recovered history — it
	// never applied a commit the crash image lost.
	if applied > recovered {
		t.Fatalf("follower applied %d beyond recovered CSN %d", applied, recovered)
	}
	lv2, err := leader2.DefineView(rollingjoin.ViewSpec{
		Name:   "big",
		Tables: []string{"users", "orders"},
		Joins: []rollingjoin.Join{{
			LeftTable: "users", LeftColumn: "id",
			RightTable: "orders", RightColumn: "uid",
		}},
		Output: []rollingjoin.OutCol{
			{Table: "users", Column: "name"},
			{Table: "orders", Column: "amount"},
		},
	}, rollingjoin.Maintain{Interval: 1})
	if err != nil {
		t.Fatalf("redefine view: %v", err)
	}
	srv2 := httptest.NewServer(repl.NewServer(leader2).Handler())
	defer srv2.Close()

	tailer2 := repl.NewTailer(follower, srv2.URL)
	tailer2.Start()
	defer tailer2.Stop()

	// Post-failover commits must reach the follower too.
	for i := 25; i < 40; i++ {
		replCommit(t, leader2, i)
	}
	converge(t, leader2, follower, lv2, fv)
	if err := tailer2.Err(); err != nil {
		t.Fatalf("tailer after failover: %v", err)
	}
	_ = lv
}

// TestCloseDuringActiveCapture is the shutdown-ordering regression test:
// Close must drain the capture process before closing the engine (and its
// log). Pre-fix, the engine closed first, killing capture mid-read — the
// tail of the commit history never reached the unit-of-work table and the
// race detector flagged the teardown.
func TestCloseDuringActiveCapture(t *testing.T) {
	db, err := rollingjoin.Open(rollingjoin.Options{})
	if err != nil {
		t.Fatal(err)
	}
	replSchema(t, db)
	for i := 0; i < 500; i++ {
		if _, err := db.Update(func(tx *rollingjoin.Tx) error {
			return tx.Insert("orders", rollingjoin.Int(int64(i)), rollingjoin.Int(1))
		}); err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	// Close immediately: capture is still draining the log behind the
	// writers.
	if err := db.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	last := db.LastCSN()
	uow := db.UOW()
	if uow == nil {
		t.Fatal("no unit-of-work table after close")
	}
	csn, ok := uow.CSNAtOrBefore(time.Now().Add(time.Hour))
	if !ok || csn != last {
		t.Fatalf("capture drained to %d (ok=%v), engine committed through %d", csn, ok, last)
	}
}

// TestCSNAtNoCommits is the nil-UOW regression test: time-travel lookups
// on a database with no commits must return ErrNoCommits, not panic.
func TestCSNAtNoCommits(t *testing.T) {
	db, err := rollingjoin.Open(rollingjoin.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.CSNAt(time.Now()); !errors.Is(err, rollingjoin.ErrNoCommits) {
		t.Fatalf("CSNAt on empty db: %v; want ErrNoCommits", err)
	}

	// With history, an instant before every commit still maps to nothing.
	if err := db.CreateTable("t", rollingjoin.Col("a", rollingjoin.TypeInt)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Update(func(tx *rollingjoin.Tx) error {
		return tx.Insert("t", rollingjoin.Int(1))
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CSNAt(time.Unix(0, 0)); !errors.Is(err, rollingjoin.ErrNoCommits) {
		t.Fatalf("CSNAt(epoch): %v; want ErrNoCommits", err)
	}
	replWait(t, "capture of the commit", 5*time.Second, func() bool {
		csn, err := db.CSNAt(time.Now())
		return err == nil && csn > 0
	})
}

// TestRefreshToTimeNoCommits covers the callers of CSNAt: view refresh by
// wall time surfaces the typed error instead of panicking.
func TestRefreshToTimeNoCommits(t *testing.T) {
	db, err := rollingjoin.Open(rollingjoin.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	v := replSchema(t, db)
	if _, err := v.RefreshToTime(time.Unix(0, 0)); !errors.Is(err, rollingjoin.ErrNoCommits) {
		t.Fatalf("RefreshToTime(epoch): %v; want ErrNoCommits", err)
	}
}
